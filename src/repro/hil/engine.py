"""The closed-loop HiL engine.

One run couples, at a 5 ms base step:

- the **vehicle plant** (nonlinear bicycle + steering actuator),
- the **camera** (a frame is available every step — 200 FPS),
- the **sensing chain** (ISP with the active knob -> scheduled
  classifiers -> sliding-window perception with the active ROI),
- the **reconfiguration manager** (believed situation -> knobs; ISP
  knob applied next cycle),
- the **controller** (situation-scheduled delay-aware LQR), whose
  output is actuated ``ceil(tau / 5 ms)`` steps after the frame was
  sampled.

A run ends when the vehicle reaches the end of the track, exceeds the
crash offset (lane departure), or the time budget runs out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.utils.contracts import assert_finite, contracts_enabled
from repro.control.controller import LaneKeepingController
from repro.control.gains import GainScheduler
from repro.control.lqr import LqrWeights
from repro.core.cases import CaseConfig, case_config
from repro.core.knobs import KnobSetting
from repro.core.reconfiguration import (
    MitigationConfig,
    OracleIdentifier,
    ReconfigurationManager,
    SituationIdentifier,
)
from repro.core.situation import Situation
from repro.faults.injection import (
    CLASSIFIER_FAILED,
    CLASSIFIER_WRONG,
    build_injector,
)
from repro.faults.plan import FaultPlan
from repro.hil.record import CycleRecord, HilResult
from repro.isp.pipeline import IspPipeline
from repro.perception.pipeline import PerceptionPipeline, PerceptionResult
from repro.sim.camera import CameraModel
from repro.sim.geometry import Pose2D
from repro.sim.renderer import RenderOptions, RoadSceneRenderer
from repro.sim.track import Track
from repro.sim.vehicle import Vehicle, VehicleParams, VehicleState
from repro.telemetry import build_manifest
from repro.telemetry import recorder as telemetry
from repro.telemetry.events import CYCLE_END, CYCLE_START, IDENTIFIER_INVOKED
from repro.utils import profiling
from repro.utils.profiling import profile
from repro.utils.rng import collect_streams

__all__ = ["HilConfig", "HilEngine"]


@dataclass
class _CyclePre:
    """Per-lane cycle context produced by :meth:`HilEngine._cycle_begin`.

    Carries everything the later cycle phases need, so the batched
    driver (:mod:`repro.hil.batch`) can interleave phases across lanes
    without re-deriving state.  ``invoked`` is already ``()`` when the
    frame was dropped (matching the serial drop branch).
    """

    state: object
    s_now: float
    true_situation: Situation
    active_isp: str
    invoked: tuple
    rec: object
    dropped: bool


@dataclass(frozen=True)
class HilConfig:
    """Engine parameters (paper Sec. IV-A defaults).

    The default frame size is 384x192 — 3/4 of the paper's 512x256 — to
    keep closed-loop wall-clock practical; timing (``tau``, ``h``) comes
    from the Xavier model either way, and the BEV resampling makes the
    perception geometry resolution-independent.
    """

    frame_width: int = 384
    frame_height: int = 192
    sim_step_ms: float = 5.0
    initial_offset_m: float = 0.20
    initial_heading_err: float = 0.0
    crash_offset_m: float = 1.975  # half lane width + half vehicle margin
    end_margin_m: float = 8.0
    max_sim_time_s: Optional[float] = None
    invocation_window_ms: float = 300.0
    isp_apply_lag: int = 1
    power_mode: str = "30W"
    sensor_noise: bool = True
    imu_noise: bool = False
    frame_drop_rate: float = 0.0
    use_feedforward: bool = False
    use_lqg: bool = False
    seed: int = 0
    #: Measure wall-clock time per sensing/control stage and attach the
    #: stats to :attr:`HilResult.profile`.  Pure observability: the
    #: simulated trace is bit-identical with profiling on or off (timing
    #: in the loop is *modeled* via Table II, never measured).
    profile: bool = False
    #: Deterministic fault campaign applied at the sensing seams (see
    #: :mod:`repro.faults`).  ``None`` or an empty plan injects nothing
    #: and leaves the trace bit-identical.
    fault_plan: Optional[FaultPlan] = None
    #: Graceful-degradation policy (staleness watchdog + bounded
    #: classifier retries).  ``None`` disables mitigation; an attached
    #: but idle policy (no faults firing) does not alter the trace.
    mitigation: Optional[MitigationConfig] = None


class HilEngine:
    """Runs closed-loop LKAS simulations for one track and design case."""

    def __init__(
        self,
        track: Track,
        case: Union[CaseConfig, str],
        table: Optional[Mapping[Situation, KnobSetting]] = None,
        identifier: Optional[Union[SituationIdentifier, str]] = None,
        config: HilConfig = HilConfig(),
        vehicle_params: VehicleParams = VehicleParams(),
        weights: LqrWeights = LqrWeights(),
    ):
        self.track = track
        self.case = case if isinstance(case, CaseConfig) else case_config(case)
        self.config = config
        self.vehicle_params = vehicle_params

        # The manifest records which RNG streams a run consumes; the
        # collection listener only observes derive_rng *names*, so the
        # generators constructed inside are untouched.
        with collect_streams() as streams:
            self.camera = CameraModel(
                width=config.frame_width, height=config.frame_height
            )
            self.renderer = RoadSceneRenderer(
                self.camera,
                track,
                options=RenderOptions(noise=config.sensor_noise),
                seed=config.seed,
            )
            self.perception = PerceptionPipeline(self.camera)
            if isinstance(identifier, str):
                # Registry spec, e.g. "oracle:0.99" or "cnn" — mirrors
                # case_config(name) for the case argument.
                from repro.core.identifiers import resolve_identifier

                identifier = resolve_identifier(identifier, seed=config.seed)
            self.identifier = identifier or OracleIdentifier(seed=config.seed)
            self.injector = build_injector(config.fault_plan, config.seed)
            self.manager = ReconfigurationManager(
                self.case,
                table,
                invocation_window_ms=config.invocation_window_ms,
                isp_apply_lag=config.isp_apply_lag,
                power_mode=config.power_mode,
                mitigation=config.mitigation,
            )
            self.gain_scheduler = GainScheduler(vehicle_params, weights)
            self._isp_cache: Dict[str, IspPipeline] = {}
            self._lqg_estimator = None
            self._kalman_cache: Dict[int, "np.ndarray"] = {}
            if config.imu_noise:
                from repro.sim.imu import ImuModel

                self._imu = ImuModel(seed=config.seed)
            else:
                self._imu = None
            if not 0.0 <= config.frame_drop_rate < 1.0:
                raise ValueError("frame_drop_rate must be in [0, 1)")
            from repro.utils.rng import derive_rng

            self._drop_rng = derive_rng(config.seed, "frame-drop")
        #: RNG stream names derived while the engine assembled itself
        #: (externally constructed identifier instances derive theirs
        #: before this scope and are not captured).
        self.rng_streams = tuple(sorted(set(streams)))

    def _isp(self, name: str) -> IspPipeline:
        pipeline = self._isp_cache.get(name)
        if pipeline is None:
            pipeline = IspPipeline(name)
            self._isp_cache[name] = pipeline
        return pipeline

    def _start_run(self, start_s: float):
        """Reset the manager and build the initial vehicle + step budget.

        Shared between the serial loop below and the batched lock-step
        driver (:mod:`repro.hil.batch`), so both start from bitwise the
        same state.
        """
        cfg = self.config
        track = self.track
        initial_situation = track.situation_at(start_s)
        self.manager.reset(initial_situation)

        # Initial pose: on the lane with the configured offset.
        center = track.pose_at(start_s, cfg.initial_offset_m)
        pose = Pose2D(
            center.x, center.y, center.heading + cfg.initial_heading_err
        )
        # Initial speed: what the case would command in this situation.
        # A preview, not a decide(): deciding here would enqueue an ISP
        # knob that begin_cycle pops one cycle early at step 0.
        initial_decision = self.manager.preview()
        vehicle = Vehicle(
            self.vehicle_params,
            VehicleState(pose=pose, speed=initial_decision.speed_kmph / 3.6),
        )
        max_time_s = cfg.max_sim_time_s
        if max_time_s is None:
            # Generous budget: slowest knob speed plus transients.
            max_time_s = (track.length - start_s) / (30.0 / 3.6) * 1.5 + 10.0
        n_steps = int(np.ceil(max_time_s / (cfg.sim_step_ms / 1000.0)))
        return vehicle, n_steps

    def _timing_steps(self, record: CycleRecord):
        """Actuation delay / control period of a cycle in whole steps."""
        cfg = self.config
        tau_steps = max(
            1, int(np.ceil(record.delay_ms / cfg.sim_step_ms - 1e-9))
        )
        h_steps = max(1, int(round(record.period_ms / cfg.sim_step_ms)))
        return tau_steps, h_steps

    def run(self, start_s: float = 0.0) -> HilResult:
        """Simulate from ``start_s`` to the end of the track."""
        cfg = self.config
        track = self.track
        step_s = cfg.sim_step_ms / 1000.0

        vehicle, n_steps = self._start_run(start_s)
        controller: Optional[LaneKeepingController] = None

        times = np.zeros(n_steps)
        s_arr = np.zeros(n_steps)
        d_arr = np.zeros(n_steps)
        y_arr = np.zeros(n_steps)
        steer_arr = np.zeros(n_steps)
        speed_arr = np.zeros(n_steps)
        cycles = []

        control_due = 0
        pending = []  # (apply_step, command) actuations in flight
        current_u = 0.0
        s_hint = start_s
        crashed = False
        crash_s: Optional[float] = None
        completed = False
        recorded = 0

        # Profiling never alters the simulation: spans only read the
        # wall clock, and the loop's timing model stays Table II based.
        # An already-active profiler (REPRO_PROFILE=1) is reused so CLI
        # runs aggregate across engines; otherwise cfg.profile scopes a
        # private one to this run.
        profiler = profiling.get_active()
        local_profiler = None
        if profiler is None and cfg.profile:
            profiler = local_profiler = profiling.Profiler()
            profiling.activate(local_profiler)

        wall_started = time.time()
        try:
            for step in range(n_steps):
                t_ms = step * cfg.sim_step_ms
                state = vehicle.state

                # Actuate commands whose sensor-to-actuation delay elapsed.
                # This happens before the new sample: with tau == h the
                # command lands exactly when the next frame is taken.
                while pending and pending[0][0] <= step:
                    current_u = pending.pop(0)[1]

                if step == control_due:
                    u, decision, record, controller = self._control_cycle(
                        t_ms, state, s_hint, controller
                    )
                    cycles.append(record)
                    vehicle.set_target_speed(decision.speed_kmph / 3.6)
                    # Use the record's timing, not the decision's: a
                    # latency-spike fault adds to both delay and period
                    # (the cycle blocks); without faults the values are
                    # bit-identical to decision.timing.
                    tau_steps, h_steps = self._timing_steps(record)
                    pending.append((step + tau_steps, u))
                    control_due = step + h_steps

                vehicle.step(step_s, current_u)
                state = vehicle.state
                s_now, d_now = track.frenet(state.pose.x, state.pose.y, s_hint=s_hint)
                s_hint = s_now
                look = state.pose.position() + self.perception.lookahead * state.pose.forward()
                _, y_true = track.frenet(look[0], look[1], s_hint=s_now)

                times[recorded] = (step + 1) * step_s
                s_arr[recorded] = s_now
                d_arr[recorded] = d_now
                y_arr[recorded] = y_true
                steer_arr[recorded] = state.steer
                speed_arr[recorded] = state.speed
                recorded += 1

                if abs(d_now) > cfg.crash_offset_m:
                    crashed = True
                    crash_s = s_now
                    break
                if s_now >= track.length - cfg.end_margin_m:
                    completed = True
                    break
        finally:
            if local_profiler is not None:
                profiling.deactivate()

        rec = telemetry.get_active()
        if rec is not None and profiler is not None:
            rec.metrics.absorb_profiler(profiler.stats())

        return self._build_result(
            times,
            s_arr,
            d_arr,
            y_arr,
            steer_arr,
            speed_arr,
            recorded,
            cycles,
            crashed,
            crash_s,
            completed,
            profiler,
            wall_started,
            time.time(),
        )

    def _build_result(
        self,
        times,
        s_arr,
        d_arr,
        y_arr,
        steer_arr,
        speed_arr,
        recorded,
        cycles,
        crashed,
        crash_s,
        completed,
        profiler,
        wall_started,
        wall_finished,
    ) -> HilResult:
        """Assemble the :class:`HilResult` of one finished rollout.

        The manifest is pure provenance (config hash, versions, RNG
        stream names, wall-clock bounds): always attached, never read
        back by the loop, so the simulated arrays stay bit-identical.
        """
        manifest = build_manifest(
            config=self.config,
            rng_streams=self.rng_streams,
            started_at=wall_started,
            finished_at=wall_finished,
        )
        return HilResult(
            time_s=times[:recorded],
            s=s_arr[:recorded],
            lateral_offset=d_arr[:recorded],
            y_l_true=y_arr[:recorded],
            steering=steer_arr[:recorded],
            speed=speed_arr[:recorded],
            cycles=cycles,
            crashed=crashed,
            crash_s=crash_s,
            completed=completed,
            profile=profiler.stats() if profiler is not None else None,
            manifest=manifest,
        )

    # ------------------------------------------------------------------

    def _filter_measurement(self, gains, measurement, u_prev):
        """Optional LQG path: Kalman-filter the perception measurement.

        The estimator state persists across situation switches (the
        physical state is continuous); the model/filter gains follow
        the active design.
        """
        from repro.control.lqg import KalmanLaneEstimator, design_kalman_gain

        key = id(gains)
        kalman_gain = self._kalman_cache.get(key)
        if kalman_gain is None:
            kalman_gain = design_kalman_gain(gains)
            self._kalman_cache[key] = kalman_gain
        if self._lqg_estimator is None:
            self._lqg_estimator = KalmanLaneEstimator(gains, kalman_gain)
        elif self._lqg_estimator.gains is not gains:
            self._lqg_estimator.set_gains(gains, kalman_gain)
        estimator = self._lqg_estimator
        estimator.predict(u_prev)
        estimator.update(measurement)
        return estimator.filtered_measurement(curvature=measurement.curvature)

    def _cycle_begin(self, t_ms, state, s_hint) -> _CyclePre:
        """Phase 1 of a cycle: situate, open the cycle, roll frame drop.

        The batched driver runs this per lane before grouping lanes for
        the batched kernels; the serial path calls it from
        :meth:`_control_cycle`.  Both execute identical operations in
        identical order, so traces stay bit-identical.
        """
        track = self.track
        s_now, _ = track.frenet(state.pose.x, state.pose.y, s_hint=s_hint)
        true_situation = track.situation_at(s_now)

        active_isp, invoked = self.manager.begin_cycle(t_ms)
        # One lookup per cycle: with telemetry disabled every hook below
        # is a single `is not None` check on the shared no-op slot.
        rec = telemetry.get_active()
        if rec is not None:
            rec.emit(
                CYCLE_START,
                time_ms=t_ms,
                s=s_now,
                active_isp=active_isp,
                invoked=list(invoked),
            )
        dropped = (
            self.config.frame_drop_rate > 0.0
            and self._drop_rng.random() < self.config.frame_drop_rate
        )
        if dropped:
            # Camera glitch: no frame this cycle — no identification,
            # no measurement; the controller holds (fault injection).
            invoked = ()
        return _CyclePre(
            state, s_now, true_situation, active_isp, invoked, rec, dropped
        )

    def _cycle_classify(self, t_ms, pre: _CyclePre, rgb, features=None) -> None:
        """Phase 2b: classifier invocation + identification bookkeeping.

        *features* short-circuits the identifier call with a
        pre-computed result (the batched driver's stacked classifier
        forward); it is honoured only on the clean-outcome path, which
        is the only path lanes eligible for batching can take.
        """
        invoked = pre.invoked
        rec = pre.rec
        # None means every invocation is clean (the only path the
        # null injector takes, so fault-free runs stay identical).
        outcomes = self.injector.classifier_outcomes(t_ms, invoked)
        if outcomes is None:
            if invoked:
                if rec is not None:
                    rec.emit(
                        IDENTIFIER_INVOKED,
                        time_ms=t_ms,
                        classifiers=list(invoked),
                    )
                if features is None:
                    with profile("hil.classifier"):
                        features = self.identifier.identify(
                            rgb, invoked, pre.true_situation
                        )
                self.manager.integrate_identification(features)
            self.manager.note_identification(t_ms, invoked)
        else:
            ok = tuple(
                n for n in invoked if outcomes[n] != CLASSIFIER_FAILED
            )
            failed = tuple(
                n for n in invoked if outcomes[n] == CLASSIFIER_FAILED
            )
            wrong = tuple(n for n in ok if outcomes[n] == CLASSIFIER_WRONG)
            if ok:
                if rec is not None:
                    rec.emit(
                        IDENTIFIER_INVOKED,
                        time_ms=t_ms,
                        classifiers=list(ok),
                    )
                with profile("hil.classifier"):
                    features = self.identifier.identify(
                        rgb, ok, pre.true_situation
                    )
                features = self.injector.corrupt_features(
                    t_ms, features, wrong
                )
                self.manager.integrate_identification(features)
            self.manager.note_identification(t_ms, ok, failed)

    def _control_cycle(self, t_ms, state, s_hint, controller):
        """One sensing+control cycle; returns (u, decision, record, controller)."""
        pre = self._cycle_begin(t_ms, state, s_hint)
        if pre.dropped:
            decision = self.manager.decide(t_ms, pre.invoked)
            measurement = PerceptionResult.invalid()
        else:
            with profile("hil.render"):
                raw = self.renderer.render_raw(pre.state.pose)
            raw = self.injector.corrupt_raw(t_ms, raw)
            with profile("hil.isp"):
                rgb = self._isp(pre.active_isp).process(
                    raw, tap=self.injector.isp_tap(t_ms)
                )
            self._cycle_classify(t_ms, pre, rgb)
            decision = self.manager.decide(t_ms, pre.invoked)

            self.perception.set_roi(decision.roi)
            with profile("hil.pr"):
                measurement = self.perception.process(rgb)
            if self.injector.perception_dropout(t_ms):
                # The PR stage produced nothing usable this cycle; the
                # controller holds exactly as on a missed detection.
                measurement = PerceptionResult.invalid()
        return self._cycle_finish(t_ms, pre, decision, measurement, controller)

    def _cycle_finish(self, t_ms, pre: _CyclePre, decision, measurement, controller):
        """Phase 3: contracts, control law, cycle record + telemetry."""
        state = pre.state
        s_now = pre.s_now
        rec = pre.rec
        invoked = pre.invoked
        if contracts_enabled():
            # NaN here would silently corrupt the control loop; fail at
            # the sensing/control boundary instead.
            assert_finite(
                (measurement.y_l, measurement.epsilon_l, measurement.curvature),
                "perception measurement",
            )
        self.manager.observe_measurement(measurement.valid)

        with profile("hil.control"):
            gains = self.gain_scheduler.gains_for(
                decision.speed_kmph / 3.6,
                decision.timing.period_s,
                decision.timing.delay_s,
            )
            if controller is None:
                controller = LaneKeepingController(
                    gains,
                    steer_limit=self.vehicle_params.steer_limit,
                    use_feedforward=self.config.use_feedforward,
                )
            else:
                controller.set_gains(gains)

            if self.config.use_lqg:
                measurement = self._filter_measurement(
                    gains, measurement, controller.state.u_prev
                )

            if self._imu is not None:
                v_y, r, steer = self._imu.sample(
                    state, self.config.sim_step_ms / 1000.0
                )
            else:
                v_y, r, steer = (
                    state.lateral_velocity,
                    state.yaw_rate,
                    state.steer,
                )
            u = controller.step(measurement, v_y, r, steer)
        # A latency-spike fault blocks the pipeline: the extra time adds
        # to this cycle's delay and period (0.0 without faults, which
        # leaves the float values bit-identical).
        extra_ms = self.injector.extra_latency_ms(t_ms)
        record = CycleRecord(
            time_ms=t_ms,
            s=s_now,
            active_isp=decision.active_isp,
            roi=decision.roi,
            speed_kmph=decision.speed_kmph,
            period_ms=decision.timing.period_ms + extra_ms,
            delay_ms=decision.timing.delay_ms + extra_ms,
            invoked=invoked,
            measurement_valid=measurement.valid,
            y_l_measured=measurement.y_l,
            steering=u,
            degraded=decision.degraded,
            faults=self.injector.active_kinds(t_ms),
        )
        if rec is not None:
            rec.emit(
                CYCLE_END,
                time_ms=t_ms,
                s=s_now,
                active_isp=record.active_isp,
                roi=record.roi,
                speed_kmph=record.speed_kmph,
                period_ms=record.period_ms,
                delay_ms=record.delay_ms,
                measurement_valid=record.measurement_valid,
                degraded=record.degraded,
                steering=u,
            )
        return u, decision, record, controller
