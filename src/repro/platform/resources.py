"""Compute resources of the NVIDIA AGX Xavier (paper Fig. 4a).

Only the IPs the paper uses are modelled: the 8-core Carmel CPU cluster
and the 512-core integrated Volta GPU, sharing 16 GB of LPDDR4x, under
a 30 W power budget (the paper's deployment constraint for EVs).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Resource", "XavierPlatform", "XAVIER"]


class Resource(str, Enum):
    """Where a task runs (Fig. 4b mapping)."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class XavierPlatform:
    """Static platform description used by the timing model."""

    name: str = "NVIDIA AGX Xavier"
    cpu_cores: int = 8
    cpu_arch: str = "Carmel ARMv8.2"
    gpu_cuda_cores: int = 512
    gpu_arch: str = "Volta"
    dram_gb: int = 16
    dram_type: str = "LPDDR4x"
    power_budget_w: float = 30.0

    def validate_power(self, draw_w: float) -> bool:
        """Whether a hypothetical power draw fits the deployment budget."""
        if draw_w < 0:
            raise ValueError("power draw cannot be negative")
        return draw_w <= self.power_budget_w


#: The platform instance used throughout the reproduction.
XAVIER = XavierPlatform()
