"""Xavier power modes and their runtime scaling.

The paper evaluates with the Xavier "constrained to [a] power-budget of
30W" (Fig. 1 caption) — all Table II/IV runtimes are 30 W numbers.  The
device also ships 10 W / 15 W / MAXN nvpmodel presets that rescale CPU
and GPU clocks; this module models them as multiplicative runtime
factors so the hardware-aware design flow can be re-run under a
different budget (the power-mode ablation benchmark).

Scale factors follow the published clock ratios of the AGX Xavier
nvpmodel table (e.g. GPU 1377 MHz at 30 W vs 670 MHz at 10 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.platform.resources import Resource

__all__ = ["PowerMode", "POWER_MODES", "power_mode", "DEFAULT_POWER_MODE"]


@dataclass(frozen=True)
class PowerMode:
    """One nvpmodel preset.

    ``cpu_scale`` / ``gpu_scale`` multiply the 30 W profiled runtimes
    (the paper's measurement condition, scale 1.0).
    """

    name: str
    budget_w: float
    cpu_scale: float
    gpu_scale: float

    def __post_init__(self):
        if self.cpu_scale <= 0 or self.gpu_scale <= 0:
            raise ValueError(f"{self.name}: scales must be > 0")

    def scale_for(self, resource: Resource) -> float:
        """The runtime scale factor of *resource* under this mode."""
        return self.cpu_scale if resource is Resource.CPU else self.gpu_scale


#: The paper's measurement condition.
DEFAULT_POWER_MODE = "30W"

POWER_MODES: Dict[str, PowerMode] = {
    mode.name: mode
    for mode in (
        # MAXN: unconstrained clocks (GPU 1377 MHz is already the cap on
        # the 30 W preset for most kernels; CPU gains a little).
        PowerMode("MAXN", budget_w=float("inf"), cpu_scale=0.85, gpu_scale=0.95),
        PowerMode("30W", budget_w=30.0, cpu_scale=1.0, gpu_scale=1.0),
        # 15 W: GPU 900 MHz (~1.53x), CPU 1200 MHz 4-core (~1.4x).
        PowerMode("15W", budget_w=15.0, cpu_scale=1.4, gpu_scale=1.55),
        # 10 W: GPU 670 MHz (~2.05x), CPU 1200 MHz 2-core (~1.8x).
        PowerMode("10W", budget_w=10.0, cpu_scale=1.8, gpu_scale=2.05),
    )
}


def power_mode(name: str) -> PowerMode:
    """Look up a power mode by nvpmodel-style name."""
    try:
        return POWER_MODES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown power mode {name!r}; expected one of {sorted(POWER_MODES)}"
        ) from exc
