"""NVIDIA AGX Xavier platform model (paper Sec. II, Fig. 4).

The paper uses the Xavier as a source of *timing*: profiled runtimes of
the ISP configurations, perception, control and classifiers determine
the sensor-to-actuation delay ``tau``, the sampling period ``h`` and
the achievable FPS.  This package reproduces that role analytically:
a resource/mapping description of Fig. 4 plus the profiled-runtime
database of Tables II and IV, and the schedule arithmetic that turns a
pipeline configuration into ``(tau, h, FPS)``.
"""

from repro.platform.resources import Resource, XavierPlatform, XAVIER
from repro.platform.profiles import (
    RuntimeProfile,
    PROFILE_DB,
    classifier_runtime_ms,
    isp_runtime_ms,
    pr_runtime_ms,
    control_runtime_ms,
)
from repro.platform.mapping import LkasTask, LkasTaskGraph, default_task_graph
from repro.platform.power import (
    DEFAULT_POWER_MODE,
    POWER_MODES,
    PowerMode,
    power_mode,
)
from repro.platform.schedule import (
    SIM_STEP_MS,
    PipelineTiming,
    pipeline_timing,
    period_for_delay,
    sensing_fps,
)

__all__ = [
    "DEFAULT_POWER_MODE",
    "POWER_MODES",
    "PowerMode",
    "power_mode",
    "Resource",
    "XavierPlatform",
    "XAVIER",
    "RuntimeProfile",
    "PROFILE_DB",
    "classifier_runtime_ms",
    "isp_runtime_ms",
    "pr_runtime_ms",
    "control_runtime_ms",
    "LkasTask",
    "LkasTaskGraph",
    "default_task_graph",
    "SIM_STEP_MS",
    "PipelineTiming",
    "pipeline_timing",
    "period_for_delay",
    "sensing_fps",
]
