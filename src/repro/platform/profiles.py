"""Profiled-runtime database (paper Tables II and IV).

All values are the paper's measurements on the NVIDIA AGX Xavier at a
30 W power budget for 512x256 frames.  They drive the platform timing
model; our Python execution times play no role in ``(tau, h)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.isp.configs import ISP_CONFIGS
from repro.platform.resources import Resource

__all__ = [
    "RuntimeProfile",
    "PROFILE_DB",
    "isp_runtime_ms",
    "pr_runtime_ms",
    "control_runtime_ms",
    "classifier_runtime_ms",
    "SENSING_OVERHEAD_MS",
    "RECONFIG_OVERHEAD_MS",
    "REFERENCE_DETECTOR_RUNTIMES_MS",
]


@dataclass(frozen=True)
class RuntimeProfile:
    """One profiled task runtime."""

    task: str
    resource: Resource
    runtime_ms: float

    def __post_init__(self):
        if self.runtime_ms < 0:
            raise ValueError(f"{self.task}: runtime must be >= 0")


#: Perception (sliding-window PR) runtime, Table II.
_PR_MS = 3.0
#: Control computation runtime, Table II (2.5 us).
_CONTROL_MS = 0.0025
#: Each ResNet-18 classifier, Table IV.
_CLASSIFIER_MS = 5.5
#: Fixed sensing/actuation overhead calibrated so that case 1 reproduces
#: the paper's tau = 24.6 ms (S0 21.5 + PR 3.0 + control 0.0025 + 0.1).
SENSING_OVERHEAD_MS = 0.1
#: Extra cost of applying a dynamic ISP knob change (case 4 rows of
#: Table III carry ~0.2 ms above the static sum).
RECONFIG_OVERHEAD_MS = 0.2

#: Xavier-equivalent runtimes of the Fig. 1 reference detectors.
REFERENCE_DETECTOR_RUNTIMES_MS: Dict[str, float] = {
    "VPGNet": 180.0,
    "LaneNet": 250.0,
}


def _build_db() -> Dict[str, RuntimeProfile]:
    db: Dict[str, RuntimeProfile] = {}
    for name, cfg in ISP_CONFIGS.items():
        db[f"isp/{name}"] = RuntimeProfile(
            f"isp/{name}", Resource.GPU, cfg.xavier_runtime_ms
        )
    db["pr"] = RuntimeProfile("pr", Resource.CPU, _PR_MS)
    db["control"] = RuntimeProfile("control", Resource.CPU, _CONTROL_MS)
    for clf in ("road", "lane", "scene"):
        db[f"classifier/{clf}"] = RuntimeProfile(
            f"classifier/{clf}", Resource.GPU, _CLASSIFIER_MS
        )
    for det, runtime in REFERENCE_DETECTOR_RUNTIMES_MS.items():
        db[f"detector/{det}"] = RuntimeProfile(
            f"detector/{det}", Resource.GPU, runtime
        )
    return db


#: Task name -> profile, the single source of truth for the timing model.
PROFILE_DB: Dict[str, RuntimeProfile] = _build_db()


def isp_runtime_ms(config_name: str) -> float:
    """Profiled runtime of an ISP configuration (Table II)."""
    try:
        return PROFILE_DB[f"isp/{config_name}"].runtime_ms
    except KeyError as exc:
        raise ValueError(f"unknown ISP config {config_name!r}") from exc


def pr_runtime_ms() -> float:
    """Profiled runtime of the sliding-window perception (Table II)."""
    return PROFILE_DB["pr"].runtime_ms


def control_runtime_ms() -> float:
    """Profiled runtime of the LQR control computation (Table II)."""
    return PROFILE_DB["control"].runtime_ms


def classifier_runtime_ms(name: str = "road") -> float:
    """Profiled runtime of one situation classifier (Table IV)."""
    try:
        return PROFILE_DB[f"classifier/{name}"].runtime_ms
    except KeyError as exc:
        raise ValueError(f"unknown classifier {name!r}") from exc
