"""Task-DAG scheduling on the CPU/GPU resource pair (Fig. 4b, general).

The paper's sensing chain is sequential — the classifiers must finish
before perception because the PR knob they select applies in the same
cycle (Sec. III-D).  But not every dependency is tight: the *scene*
classifier only influences the ISP knob, which applies **next** cycle
anyway, so its GPU time can overlap the CPU-side perception.  This
module generalizes the chain model of :mod:`repro.platform.mapping`
into a dependency DAG with list scheduling over exclusive resources, so
such mapping optimizations can be explored and quantified
(`bench_ablation_mapping.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.platform.profiles import PROFILE_DB, SENSING_OVERHEAD_MS
from repro.platform.resources import Resource

__all__ = ["DagTask", "TaskDag", "dag_delay_ms", "lkas_dag"]


@dataclass(frozen=True)
class DagTask:
    """One task instance: name, resource, runtime."""

    name: str
    resource: Resource
    runtime_ms: float

    def __post_init__(self):
        if self.runtime_ms < 0:
            raise ValueError(f"{self.name}: runtime must be >= 0")


class TaskDag:
    """A dependency DAG of tasks scheduled on exclusive resources."""

    def __init__(self):
        self._graph = nx.DiGraph()

    def add_task(self, task: DagTask) -> None:
        """Register a task node (names must be unique)."""
        if task.name in self._graph:
            raise ValueError(f"duplicate task {task.name!r}")
        self._graph.add_node(task.name, task=task)

    def add_dependency(self, before: str, after: str) -> None:
        """Add a precedence edge; rejects cycles."""
        for name in (before, after):
            if name not in self._graph:
                raise ValueError(f"unknown task {name!r}")
        self._graph.add_edge(before, after)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(before, after)
            raise ValueError(f"dependency {before!r} -> {after!r} creates a cycle")

    @property
    def tasks(self) -> List[DagTask]:
        """All registered tasks."""
        return [self._graph.nodes[name]["task"] for name in self._graph.nodes]

    def schedule(self) -> Tuple[Dict[str, Tuple[float, float]], float]:
        """List-schedule the DAG; returns (start/end per task, makespan).

        Tasks become ready when all predecessors finished; each resource
        runs one task at a time; ready tasks are served in topological
        order (FIFO per resource), which is optimal for the small
        chain-with-side-branches graphs the LKAS pipeline produces.
        """
        finish: Dict[str, float] = {}
        spans: Dict[str, Tuple[float, float]] = {}
        resource_free = {resource: 0.0 for resource in Resource}
        for name in nx.topological_sort(self._graph):
            task: DagTask = self._graph.nodes[name]["task"]
            ready = max(
                (finish[p] for p in self._graph.predecessors(name)), default=0.0
            )
            start = max(ready, resource_free[task.resource])
            end = start + task.runtime_ms
            spans[name] = (start, end)
            finish[name] = end
            resource_free[task.resource] = end
        makespan = max(finish.values(), default=0.0)
        return spans, makespan

    def critical_path(self) -> List[str]:
        """Longest runtime-weighted dependency path (ignores resources)."""
        weighted = nx.DiGraph()
        weighted.add_nodes_from(self._graph.nodes)
        for before, after in self._graph.edges:
            weight = self._graph.nodes[before]["task"].runtime_ms
            weighted.add_edge(before, after, weight=weight)
        return nx.dag_longest_path(weighted, weight="weight")


def _profiled(name: str) -> DagTask:
    profile = PROFILE_DB[name]
    return DagTask(profile.task, profile.resource, profile.runtime_ms)


def lkas_dag(
    isp_config: str = "S0",
    classifiers: Sequence[str] = ("road", "lane", "scene"),
    overlap_scene: bool = False,
) -> TaskDag:
    """Build the per-cycle LKAS task DAG.

    With ``overlap_scene=False`` the graph is the paper's chain:
    ISP -> classifiers -> PR -> control.  With ``overlap_scene=True``
    the scene classifier (whose output only affects the next cycle's
    ISP knob) depends on the ISP but not on PR, and PR no longer waits
    for it — the GPU runs it while the CPU does perception.
    """
    dag = TaskDag()
    isp = _profiled(f"isp/{isp_config}")
    dag.add_task(isp)
    dag.add_task(_profiled("pr"))
    dag.add_task(_profiled("control"))

    pr_waits_for: List[str] = [isp.name]
    for clf in classifiers:
        task = _profiled(f"classifier/{clf}")
        dag.add_task(task)
        dag.add_dependency(isp.name, task.name)
        if clf == "scene" and overlap_scene:
            continue  # only feeds the next cycle's ISP knob
        pr_waits_for.append(task.name)
    for name in pr_waits_for:
        if name != "pr":
            dag.add_dependency(name, "pr")
    dag.add_dependency("pr", "control")
    return dag


def dag_delay_ms(dag: TaskDag, dynamic_isp: bool = False) -> float:
    """Sensor-to-actuation delay implied by a scheduled DAG."""
    from repro.platform.profiles import RECONFIG_OVERHEAD_MS

    _, makespan = dag.schedule()
    delay = makespan + SENSING_OVERHEAD_MS
    if dynamic_isp:
        delay += RECONFIG_OVERHEAD_MS
    return delay
