"""CPU/GPU task mapping of the LKAS pipeline (paper Fig. 4b).

The ISP stages and the CNN classifiers run on the integrated Volta GPU;
the sliding-window perception and the control law run on the Carmel
CPU.  The task graph is a chain (camera -> ISP -> classifiers -> PR ->
control -> actuate), so the sensor-to-actuation delay is the sum of the
chain's runtimes, while throughput can pipeline across the two
resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.platform.profiles import PROFILE_DB, RuntimeProfile
from repro.platform.resources import Resource

__all__ = ["LkasTask", "LkasTaskGraph", "default_task_graph"]


@dataclass(frozen=True)
class LkasTask:
    """One task instance in the LKAS chain."""

    name: str
    resource: Resource
    runtime_ms: float


class LkasTaskGraph:
    """An ordered chain of LKAS tasks with per-resource accounting."""

    def __init__(self, tasks: Sequence[LkasTask]):
        if not tasks:
            raise ValueError("task graph needs at least one task")
        self.tasks: List[LkasTask] = list(tasks)

    def latency_ms(self) -> float:
        """End-to-end chain latency (the sensing part of ``tau``)."""
        return sum(t.runtime_ms for t in self.tasks)

    def resource_busy_ms(self, resource: Resource) -> float:
        """Total busy time of one resource per frame."""
        return sum(t.runtime_ms for t in self.tasks if t.resource is resource)

    def pipelined_fps(self) -> float:
        """Throughput when successive frames pipeline across resources."""
        bottleneck = max(
            self.resource_busy_ms(Resource.CPU),
            self.resource_busy_ms(Resource.GPU),
        )
        return 1000.0 / max(bottleneck, 1e-9)

    def sequential_fps(self) -> float:
        """Throughput when each frame runs the full chain to completion.

        This matches how the paper reports FPS in Fig. 1 (frames are
        processed one at a time in the closed loop).
        """
        return 1000.0 / max(self.latency_ms(), 1e-9)


def default_task_graph(
    isp_config: str = "S0",
    classifiers: Sequence[str] = (),
    include_control: bool = True,
    power_mode: str = "30W",
) -> LkasTaskGraph:
    """Build the Fig. 4(b) task chain for a pipeline configuration.

    Parameters
    ----------
    isp_config:
        Table II ISP knob name (``"S0"`` .. ``"S8"``).
    classifiers:
        Names of the classifiers invoked this frame (subset of
        ``("road", "lane", "scene")``).
    include_control:
        Whether the control task is part of the chain (Fig. 1 FPS
        excludes it; the ``tau`` computation includes it).
    power_mode:
        nvpmodel preset; runtimes are scaled from the paper's 30 W
        measurements (see :mod:`repro.platform.power`).
    """
    from repro.platform.power import power_mode as lookup_mode

    mode = lookup_mode(power_mode)
    tasks = [_task(f"isp/{isp_config}", mode)]
    for clf in classifiers:
        tasks.append(_task(f"classifier/{clf}", mode))
    tasks.append(_task("pr", mode))
    if include_control:
        tasks.append(_task("control", mode))
    return LkasTaskGraph(tasks)


def _task(profile_name: str, mode=None) -> LkasTask:
    try:
        profile: RuntimeProfile = PROFILE_DB[profile_name]
    except KeyError as exc:
        raise ValueError(f"no runtime profile for task {profile_name!r}") from exc
    runtime = profile.runtime_ms
    if mode is not None:
        runtime *= mode.scale_for(profile.resource)
    return LkasTask(profile.task, profile.resource, runtime)
