"""Schedule arithmetic: pipeline configuration -> ``(tau, h, FPS)``.

Reproduces the paper's design rules:

- ``tau`` = sum of the profiled runtimes along the sensing chain (ISP +
  invoked classifiers + PR + control) plus a small calibrated overhead,
  plus a reconfiguration overhead when ISP knobs are switched
  dynamically (case 4 and the variable scheme);
- ``h`` = ``tau`` ceiled to the Webots simulation step of 5 ms
  (footnote 5: "h and tau are ceiled to the nearest factor of the
  simulation step"), matching every ``(h, tau)`` pair in Tables III/V;
- FPS = 1000 / sensing latency (how Fig. 1 reports throughput).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.platform.mapping import default_task_graph
from repro.platform.profiles import (
    RECONFIG_OVERHEAD_MS,
    SENSING_OVERHEAD_MS,
)

__all__ = [
    "SIM_STEP_MS",
    "PipelineTiming",
    "pipeline_timing",
    "period_for_delay",
    "sensing_fps",
]

#: Webots simulation step (paper Sec. IV-A).
SIM_STEP_MS = 5.0


@dataclass(frozen=True)
class PipelineTiming:
    """The ``(tau, h)`` design annotation of one pipeline configuration."""

    delay_ms: float
    period_ms: float
    fps: float

    @property
    def delay_s(self) -> float:
        """Sensor-to-actuation delay in seconds."""
        return self.delay_ms / 1000.0

    @property
    def period_s(self) -> float:
        """Sampling period in seconds."""
        return self.period_ms / 1000.0


def period_for_delay(delay_ms: float, step_ms: float = SIM_STEP_MS) -> float:
    """Smallest multiple of the simulation step that covers ``tau``."""
    if delay_ms <= 0:
        raise ValueError(f"delay must be > 0, got {delay_ms}")
    return math.ceil(delay_ms / step_ms - 1e-9) * step_ms


def pipeline_timing(
    isp_config: str,
    classifiers: Sequence[str] = (),
    dynamic_isp: bool = False,
    step_ms: float = SIM_STEP_MS,
    power_mode: str = "30W",
) -> PipelineTiming:
    """Compute ``(tau, h, FPS)`` for one LKAS pipeline configuration.

    Parameters
    ----------
    isp_config:
        Table II ISP knob name.
    classifiers:
        Classifiers invoked every frame in this configuration.
    dynamic_isp:
        Whether ISP knobs are reconfigured at runtime (adds the
        reconfiguration overhead, as in the case 4 rows of Table III).
    power_mode:
        nvpmodel preset scaling the 30 W profiled runtimes.
    """
    graph = default_task_graph(
        isp_config, classifiers, include_control=True, power_mode=power_mode
    )
    delay = graph.latency_ms() + SENSING_OVERHEAD_MS
    if dynamic_isp:
        delay += RECONFIG_OVERHEAD_MS
    period = period_for_delay(delay, step_ms)
    fps_graph = default_task_graph(
        isp_config, classifiers, include_control=False, power_mode=power_mode
    )
    return PipelineTiming(
        delay_ms=delay,
        period_ms=period,
        fps=fps_graph.sequential_fps(),
    )


def sensing_fps(
    isp_config: str,
    classifiers: Sequence[str] = (),
    power_mode: str = "30W",
) -> float:
    """Fig. 1 style FPS of a sensing configuration (no control task)."""
    graph = default_task_graph(
        isp_config, classifiers, include_control=False, power_mode=power_mode
    )
    return graph.sequential_fps()
