"""repro: reproduction of "Hardware- and Situation-Aware Sensing for
Robust Closed-Loop Control Systems" (DATE 2021).

Subpackages
-----------
- :mod:`repro.sim` — track / renderer / vehicle substrate (Webots stand-in)
- :mod:`repro.isp` — RAW->RGB image signal processing pipeline (S0-S8)
- :mod:`repro.perception` — sliding-window lane detection + baselines
- :mod:`repro.control` — bicycle model, delay-aware LQR, switching checks
- :mod:`repro.platform` — NVIDIA AGX Xavier timing/schedule model
- :mod:`repro.nn` — minimal numpy neural-network framework
- :mod:`repro.classifiers` — road / lane / scene situation classifiers
- :mod:`repro.core` — situations, knobs, characterization, reconfiguration
- :mod:`repro.hil` — closed-loop hardware-in-the-loop engine
- :mod:`repro.metrics` — QoC (MAE) and detection-accuracy metrics
- :mod:`repro.experiments` — regeneration of every paper table/figure
- :mod:`repro.faults` — deterministic fault injection + mitigation
- :mod:`repro.telemetry` — structured run events, manifests, metrics
- :mod:`repro.service` — long-running request server over the facade
- :mod:`repro.api` — the stable keyword-only facade re-exported here

The facade functions (:func:`simulate`, :func:`characterize`,
:func:`profile`, :func:`inject`, :func:`load_trace`,
:func:`diff_traces`, :func:`connect`) are the supported programmatic
entry points; see :mod:`repro.api` for the stability contract.
"""

from repro.api import (
    ProfileReport,
    characterize,
    connect,
    diff_traces,
    inject,
    load_trace,
    profile,
    simulate,
)
from repro.utils.version import __version__

__all__ = [
    "__version__",
    "simulate",
    "characterize",
    "profile",
    "inject",
    "load_trace",
    "diff_traces",
    "connect",
    "ProfileReport",
]
