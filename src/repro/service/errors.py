"""Typed errors of the sensing service, mapped to wire error codes.

Every failure the service can report crosses the wire as a structured
``{"code": ..., "message": ...}`` error object (never a traceback, never
a silent drop).  This module is the single place where the code strings
live on the Python side: the server raises these exceptions (or maps
internal failures onto them) and :func:`error_for_code` rebuilds the
matching exception client-side, so ``except QueueFullError:`` works
identically in-process and across the socket.

Together with :mod:`repro.service.protocol` this module *defines* the
wire vocabulary, which is why both are exempt from the ``SVC001`` lint
rule (everywhere else, protocol strings must be spelled through these
constants — see :class:`repro.analysis.rules.ProtocolLiteralRule`).
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "BadRequestError",
    "UnsupportedVersionError",
    "UnknownOperationError",
    "QueueFullError",
    "DeadlineExceededError",
    "RequestCancelledError",
    "ShuttingDownError",
    "RequestNotFoundError",
    "RemoteError",
    "error_for_code",
]


class ServiceError(Exception):
    """Base class of every typed service failure.

    ``code`` is the stable wire error code; the exception message is the
    human-readable detail carried alongside it.  Subclasses override
    ``code`` only — the hierarchy *is* the code registry.

    ``request_id`` is best-effort context: the server attaches the id of
    the offending request when one could be recovered (decode errors on
    a line that still parsed as JSON), so the error response can be
    correlated client-side.
    """

    code = "internal"
    request_id = None


class BadRequestError(ServiceError):
    """The request line was not a valid protocol request."""

    code = "bad_request"


class UnsupportedVersionError(BadRequestError):
    """The request's ``"v"`` field names a protocol version we do not speak."""

    code = "unsupported_version"


class UnknownOperationError(BadRequestError):
    """The request's ``"op"`` is not a registered operation."""

    code = "unknown_op"


class QueueFullError(ServiceError):
    """Admission rejected: the bounded request queue is at capacity.

    This is the typed backpressure signal — the server *never* blocks an
    admission or silently drops a request; callers see this error and
    decide whether to retry, shed load, or slow down.
    """

    code = "queue_full"


class DeadlineExceededError(ServiceError):
    """The request's deadline expired before a result was produced.

    Raised both for requests that expired while still queued (never
    executed) and for requests whose worker task was abandoned mid-run
    (result discarded, slot reclaimed when the worker finishes).
    """

    code = "deadline_exceeded"


class RequestCancelledError(ServiceError):
    """The request was cancelled by an explicit ``cancel`` operation."""

    code = "cancelled"


class ShuttingDownError(ServiceError):
    """The server is draining and no longer admits new work."""

    code = "shutting_down"


class RequestNotFoundError(ServiceError):
    """``cancel`` named a request id that is not queued on this connection."""

    code = "not_found"


class RemoteError(ServiceError):
    """The operation failed inside the service (worker raised)."""

    code = "internal"


#: Every concrete error class, in definition order.  ``BadRequestError``
#: subclasses come after it so exact code lookups resolve to the most
#: specific class.
_ERROR_CLASSES = (
    ServiceError,
    BadRequestError,
    UnsupportedVersionError,
    UnknownOperationError,
    QueueFullError,
    DeadlineExceededError,
    RequestCancelledError,
    ShuttingDownError,
    RequestNotFoundError,
    RemoteError,
)

_CODE_TO_ERROR = {cls.code: cls for cls in _ERROR_CLASSES}
# "internal" is shared by the base and RemoteError; client-side an
# internal failure is a remote worker failure, so RemoteError wins.
_CODE_TO_ERROR[RemoteError.code] = RemoteError


def error_for_code(*, code: str, message: str) -> ServiceError:
    """The typed exception for a wire error object.

    Unknown codes (a newer server speaking additive fields) degrade to
    the :class:`ServiceError` base rather than failing the decode — the
    message still carries the detail.
    """
    cls = _CODE_TO_ERROR.get(code, ServiceError)
    error = cls(message)
    # Preserve an unknown wire code verbatim so callers can still
    # branch on `exc.code` for codes newer than this client.
    if cls is ServiceError and code != ServiceError.code:
        error.code = code
    return error
