"""Long-running sensing service: served access to the ``repro.api`` facade.

The package splits along the wire:

- :mod:`repro.service.protocol` — the versioned newline-delimited JSON
  schema (operations, envelopes, lossless result codecs);
- :mod:`repro.service.errors` — typed failures mapped to wire error
  codes, identical in-process and across the socket;
- :mod:`repro.service.server` — the asyncio server (bounded admission,
  deadlines, graceful drain) dispatching onto the persistent worker
  pool;
- :mod:`repro.service.client` — the blocking client
  (``repro.api.connect`` constructs it).

The served surface is under the same lockfile discipline as
``repro.api`` itself: API002 checks these modules' signatures and
API003 pins them in ``api_surface.json``.
"""

from __future__ import annotations

from repro.service.client import ServiceClient
from repro.service.errors import (
    BadRequestError,
    DeadlineExceededError,
    QueueFullError,
    RemoteError,
    RequestCancelledError,
    RequestNotFoundError,
    ServiceError,
    ShuttingDownError,
    UnknownOperationError,
    UnsupportedVersionError,
    error_for_code,
)
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import SensingServer, ServerThread, serve_blocking

__all__ = [
    "PROTOCOL_VERSION",
    "SensingServer",
    "ServerThread",
    "ServiceClient",
    "serve_blocking",
    "ServiceError",
    "BadRequestError",
    "UnsupportedVersionError",
    "UnknownOperationError",
    "QueueFullError",
    "DeadlineExceededError",
    "RequestCancelledError",
    "ShuttingDownError",
    "RequestNotFoundError",
    "RemoteError",
    "error_for_code",
]
