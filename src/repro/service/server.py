"""Resident sensing service: asyncio request server over ``repro.api``.

One long-lived process amortizes what every CLI invocation re-pays —
interpreter start, model deploy, cache warm, worker-pool fork — and
turns the stable facade into a served API.  The event loop only parses,
schedules and replies; every work operation executes on the persistent
:class:`~concurrent.futures.ProcessPoolExecutor` from
:mod:`repro.utils.parallel` (the same pool the sweeps reuse), so a
Monte-Carlo ``simulate`` with a seed list still flows through the
batched lock-step engine inside a worker.

Scheduling contract (pinned by ``tests/test_service.py``):

- **Bounded admission** — at most ``queue_limit`` requests wait;
  admission past that fails *immediately* with a typed ``queue_full``
  error.  The server never blocks an admission and never drops one
  silently.
- **Deadlines** — a request's ``deadline_ms`` is converted to an
  absolute event-loop time at admission.  Expiring while queued means
  the request is never executed; expiring in flight abandons the worker
  task (its result is discarded and the in-flight slot is reclaimed
  when the worker finishes — process pools cannot preempt a running
  task).
- **Graceful drain** — SIGTERM or a ``shutdown`` operation stops
  admission (``shutting_down`` errors), finishes every queued and
  in-flight request, flushes the metrics snapshot, then closes.
- **Observability** — ``health``/``stats`` answer inline from a
  :class:`~repro.telemetry.metrics.MetricsRegistry` (queue depth,
  in-flight, per-op latency histograms, rejection counters).
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import repro.api
from repro.service import protocol
from repro.service.errors import (
    BadRequestError,
    DeadlineExceededError,
    QueueFullError,
    RequestCancelledError,
    RequestNotFoundError,
    ServiceError,
    ShuttingDownError,
    UnknownOperationError,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.parallel import get_executor, resolve_jobs

__all__ = ["SensingServer", "ServerThread", "serve_blocking"]

_log = logging.getLogger(__name__)

#: Default bound of the admission queue.
DEFAULT_QUEUE_LIMIT = 16

#: Parameters each work operation accepts over the wire (JSON-able
#: subset of the facade keywords; rich objects like ``track=`` or
#: ``config=`` stay in-process).
_ALLOWED_PARAMS: Dict[str, frozenset] = {
    protocol.OP_SIMULATE: frozenset(
        {
            "situation",
            "case",
            "length_m",
            "identifier",
            "faults",
            "mitigate",
            "seed",
            "frame",
            "profile",
            "batch",
            "cache",
        }
    ),
    protocol.OP_CHARACTERIZE: frozenset({"situation", "batch"}),
    protocol.OP_INJECT: frozenset(
        {
            "faults",
            "situation",
            "case",
            "length_m",
            "identifier",
            "mitigate",
            "seed",
            "frame",
        }
    ),
    protocol.OP_PROFILE: frozenset(
        {"situation", "case", "length_m", "identifier", "seed", "frame"}
    ),
}

#: Parameters that must be present for the operation to mean anything;
#: checked at admission so the defect never burns a worker slot.
_REQUIRED_PARAMS: Dict[str, Tuple[str, ...]] = {
    protocol.OP_INJECT: ("faults",),
    protocol.OP_CHARACTERIZE: ("situation",),
}


def _execute_request(op: str, params: Dict[str, object]) -> Dict[str, object]:
    """Run one work operation inside a pool worker.

    Dispatches onto the :mod:`repro.api` facade and returns the
    JSON-ready result payload (serialization happens in the worker, so
    the event loop never touches result arrays).  User-input defects
    surface as :class:`BadRequestError` rather than bare ``ValueError``
    so the wire error code is typed.
    """
    kwargs = dict(params)
    frame = kwargs.get("frame")
    if frame is not None:
        # JSON has no tuples; the facade wants (width, height).
        kwargs["frame"] = tuple(frame)
    cache_delta = None
    try:
        if op == protocol.OP_SIMULATE:
            if kwargs.get("cache") not in (None, "off"):
                # The whole request runs in this worker, so a snapshot
                # delta of the process-wide counters is exactly this
                # request's cache activity; it rides back beside the
                # payload for the event loop to fold into the metrics.
                from repro.cache import global_stats

                before = global_stats().snapshot()
                result = repro.api.simulate(**kwargs)
                cache_delta = global_stats().since(before)
            else:
                result = repro.api.simulate(**kwargs)
        elif op == protocol.OP_INJECT:
            result = repro.api.inject(**kwargs)
        elif op == protocol.OP_PROFILE:
            result = repro.api.profile(**kwargs)
        elif op == protocol.OP_CHARACTERIZE:
            # Served characterization is the single-situation ranked
            # view; jobs is pinned to 1 because this *is* a pool worker.
            result = repro.api.characterize(
                situation=kwargs["situation"],
                jobs=1,
                batch=kwargs.get("batch"),
            )
        else:
            raise UnknownOperationError(f"op {op!r} is not a work operation")
    except ServiceError:
        raise
    except (ValueError, TypeError) as exc:
        raise BadRequestError(f"{op} parameters rejected: {exc}") from None
    payload = protocol.work_result_to_payload(op, result=result)
    if cache_delta is not None:
        # Sidecar for the server's metrics, popped before the response
        # is sent — the wire result payload is unchanged.
        payload["cache_stats"] = cache_delta.as_dict()
    return payload


class _Connection:
    """One client connection; serializes concurrent response writes."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self._lock = asyncio.Lock()

    async def send(self, response: Dict[str, object]) -> None:
        """Write one response line (whole lines, never interleaved)."""
        data = protocol.encode_response(response)
        async with self._lock:
            if self.writer.is_closing():
                return
            self.writer.write(data)
            await self.writer.drain()

    def close(self) -> None:
        """Close the transport (idempotent)."""
        if not self.writer.is_closing():
            self.writer.close()


@dataclass
class _Job:
    """One admitted work request waiting for (or holding) a worker."""

    request: protocol.Request
    conn: _Connection
    #: Absolute event-loop deadline, or ``None`` for no deadline.
    deadline: Optional[float]
    cancelled: bool = False
    key: Tuple[int, str] = field(default=(0, ""))


class SensingServer:
    """The asyncio service core (transport, queueing, dispatch, drain).

    Listens on a Unix-domain socket (``socket_path=``) or TCP
    (``host=``/``port=``); exactly one of the two transports must be
    chosen.  ``workers`` resolves like every other worker count
    (explicit > ``$REPRO_JOBS`` > 1, see
    :func:`repro.utils.parallel.resolve_jobs`) and sizes both the pool
    and the dispatcher set.  ``stats_path`` names an optional JSON file
    the metrics snapshot is flushed to on drain.
    """

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        stats_path: Optional[str] = None,
    ):
        if (socket_path is None) == (host is None):
            raise ValueError(
                "choose one transport: socket_path= (unix) or host=/port= (tcp)"
            )
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.socket_path = None if socket_path is None else str(socket_path)
        self.host = host
        self.port = port
        self.workers = max(1, resolve_jobs(workers))
        self.queue_limit = int(queue_limit)
        self.stats_path = None if stats_path is None else str(stats_path)
        self.metrics = MetricsRegistry()
        self._pool = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatchers: List[asyncio.Task] = []
        self._pending: Dict[Tuple[int, str], _Job] = {}
        self._connections: Set[_Connection] = set()
        self._in_flight = 0
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the transport and start the dispatcher tasks."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._queue = asyncio.Queue()
        self._pool = get_executor(self.workers)
        self._dispatchers = [
            loop.create_task(self._dispatch_loop())
            for _ in range(self.workers)
        ]
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
        _log.info(
            "sensing service listening on %s (%d workers, queue_limit=%d)",
            self.address,
            self.workers,
            self.queue_limit,
        )

    @property
    def address(self) -> Tuple[object, ...]:
        """The bound transport: ``("unix", path)`` or ``("tcp", host, port)``."""
        if self.socket_path is not None:
            return ("unix", self.socket_path)
        if self._server is not None and self._server.sockets:
            name = self._server.sockets[0].getsockname()
            return ("tcp", name[0], name[1])
        return ("tcp", self.host, self.port)

    async def wait_stopped(self) -> None:
        """Block until the server has fully drained and closed."""
        await self._stopped.wait()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop the server; with ``drain`` finish all admitted work first.

        Idempotent and safe to call concurrently (SIGTERM racing a
        ``shutdown`` operation): the first caller runs the drain, later
        callers wait for it to finish.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        _log.info("sensing service draining (%d queued)", self._queue.qsize())
        if not drain:
            for task in self._dispatchers:
                task.cancel()
        else:
            # Sentinels queue *behind* every admitted job, so each
            # dispatcher finishes its queued share (and its current
            # in-flight job) before exiting — in-flight results are
            # always delivered.
            for _ in self._dispatchers:
                self._queue.put_nowait(None)
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._flush_stats()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
        for conn in list(self._connections):
            conn.close()
        self._stopped.set()
        _log.info("sensing service stopped")

    def _flush_stats(self) -> None:
        """Atomically persist the final metrics snapshot, if configured."""
        if self.stats_path is None:
            return
        self._refresh_gauges()
        document = {
            "counters": self.metrics.counters(),
            "gauges": self.metrics.gauges(),
            "histograms": self.metrics.histogram_summaries(),
        }
        directory = os.path.dirname(os.path.abspath(self.stats_path))
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, self.stats_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except FileNotFoundError:
                pass
            raise

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(conn, line)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(conn)
            conn.close()

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        try:
            request = protocol.decode_request(line)
        except ServiceError as exc:
            self.metrics.count("service.rejected.bad_request")
            await self._send_error(conn, exc.request_id, exc)
            return
        try:
            if request.op in protocol.CONTROL_OPS:
                await self._handle_control(conn, request)
            else:
                self._admit(conn, request)
        except ServiceError as exc:
            await self._send_error(conn, request.request_id, exc)

    async def _send_error(
        self,
        conn: _Connection,
        request_id: Optional[str],
        error: ServiceError,
    ) -> None:
        await conn.send(
            protocol.error_response(
                request_id=request_id, code=error.code, message=str(error)
            )
        )

    # -- admission ----------------------------------------------------------

    def _admit(self, conn: _Connection, request: protocol.Request) -> None:
        """Queue one work request, or raise the typed rejection."""
        if self._draining:
            self.metrics.count("service.rejected.shutting_down")
            raise ShuttingDownError(
                "server is draining and no longer admits work"
            )
        allowed = _ALLOWED_PARAMS[request.op]
        unknown = sorted(set(request.params) - allowed)
        if unknown:
            raise BadRequestError(
                f"unknown {request.op} parameters {unknown} "
                f"(allowed: {sorted(allowed)})"
            )
        for name in _REQUIRED_PARAMS.get(request.op, ()):
            if name not in request.params:
                raise BadRequestError(
                    f"{request.op} requires params.{name}"
                )
        if self._queue.qsize() >= self.queue_limit:
            self.metrics.count("service.rejected.queue_full")
            raise QueueFullError(
                f"admission queue is at capacity "
                f"({self.queue_limit} requests queued)"
            )
        loop = asyncio.get_running_loop()
        deadline = None
        if request.deadline_ms is not None:
            deadline = loop.time() + request.deadline_ms / 1000.0
        job = _Job(request=request, conn=conn, deadline=deadline)
        job.key = (id(conn), request.request_id)
        self._pending[job.key] = job
        self._queue.put_nowait(job)
        self.metrics.count("service.admitted")
        self.metrics.count(f"service.op.{request.op}")
        self.metrics.gauge("service.queue_depth", self._queue.qsize())

    # -- control operations -------------------------------------------------

    async def _handle_control(
        self, conn: _Connection, request: protocol.Request
    ) -> None:
        if request.op == protocol.OP_HEALTH:
            result = self._health()
        elif request.op == protocol.OP_STATS:
            result = self._stats()
        elif request.op == protocol.OP_CANCEL:
            result = self._cancel(conn, request.params)
        else:  # protocol.OP_SHUTDOWN
            result = {"draining": True}
            asyncio.get_running_loop().create_task(self.shutdown())
        await conn.send(
            protocol.ok_response(
                request_id=request.request_id, op=request.op, result=result
            )
        )

    def _health(self) -> Dict[str, object]:
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.queue_limit,
            "in_flight": self._in_flight,
            "workers": self.workers,
        }

    def _refresh_gauges(self) -> None:
        self.metrics.gauge("service.queue_depth", self._queue.qsize())
        self.metrics.gauge("service.in_flight", self._in_flight)

    def _stats(self) -> Dict[str, object]:
        self._refresh_gauges()
        return {
            "counters": self.metrics.counters(),
            "gauges": self.metrics.gauges(),
            "histograms": self.metrics.histogram_summaries(),
        }

    def _cancel(
        self, conn: _Connection, params: Dict[str, object]
    ) -> Dict[str, object]:
        target = params.get("request_id")
        if not isinstance(target, str) or not target:
            raise BadRequestError("cancel requires params.request_id")
        job = self._pending.pop((id(conn), target), None)
        if job is None or job.cancelled:
            raise RequestNotFoundError(
                f"request {target!r} is not queued on this connection "
                "(already dispatched, finished, or never admitted)"
            )
        job.cancelled = True
        self.metrics.count("service.cancelled")
        return {"cancelled": target}

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                break
            self._pending.pop(job.key, None)
            self.metrics.gauge("service.queue_depth", self._queue.qsize())
            await self._run_job(job)

    async def _run_job(self, job: _Job) -> None:
        request = job.request
        loop = asyncio.get_running_loop()
        if job.cancelled:
            await self._send_error(
                job.conn,
                request.request_id,
                RequestCancelledError(
                    f"request {request.request_id!r} was cancelled while queued"
                ),
            )
            return
        if job.deadline is not None and loop.time() >= job.deadline:
            self.metrics.count("service.rejected.deadline")
            await self._send_error(
                job.conn,
                request.request_id,
                DeadlineExceededError(
                    f"deadline expired while request {request.request_id!r} "
                    "was queued; it was never executed"
                ),
            )
            return
        self._in_flight += 1
        self.metrics.gauge("service.in_flight", self._in_flight)
        started = loop.time()
        cfut = self._pool.submit(_execute_request, request.op, request.params)
        afut = asyncio.wrap_future(cfut)
        try:
            if job.deadline is None:
                payload = await afut
            else:
                remaining = max(0.0, job.deadline - loop.time())
                payload = await asyncio.wait_for(
                    asyncio.shield(afut), remaining
                )
        except asyncio.TimeoutError:
            # The worker task cannot be preempted: cancel is best-effort
            # (only helps if it has not started), the slot is reclaimed
            # when the worker finishes, and the late result is discarded.
            cfut.cancel()
            afut.add_done_callback(self._reap_abandoned)
            self.metrics.count("service.abandoned.deadline")
            await self._send_error(
                job.conn,
                request.request_id,
                DeadlineExceededError(
                    f"deadline expired while request {request.request_id!r} "
                    "was executing; its worker task was abandoned"
                ),
            )
            return
        except ServiceError as exc:
            self._finish_slot()
            self.metrics.count("service.failed")
            await self._send_error(job.conn, request.request_id, exc)
            return
        # The worker funnels every failure here; the client must get a
        # typed internal error, never a dropped request.
        except Exception as exc:  # reprolint: disable=EXC001
            self._finish_slot()
            self.metrics.count("service.failed")
            _log.exception(
                "request %s (%s) failed in the worker",
                request.request_id,
                request.op,
            )
            await self._send_error(
                job.conn,
                request.request_id,
                ServiceError(f"{type(exc).__name__}: {exc}"),
            )
            return
        self._finish_slot()
        cache_stats = payload.pop("cache_stats", None)
        if cache_stats:
            for name in ("hits", "misses", "stores", "evictions"):
                amount = int(cache_stats.get(name, 0))
                if amount:
                    self.metrics.count(f"service.cache.{name}", amount)
        latency_ms = (loop.time() - started) * 1000.0
        self.metrics.count("service.completed")
        self.metrics.observe(f"service.latency_ms.{request.op}", latency_ms)
        await job.conn.send(
            protocol.ok_response(
                request_id=request.request_id, op=request.op, result=payload
            )
        )

    def _finish_slot(self) -> None:
        self._in_flight -= 1
        self.metrics.gauge("service.in_flight", self._in_flight)

    def _reap_abandoned(self, future) -> None:
        """Reclaim the slot of an abandoned worker when it finishes."""
        if not future.cancelled():
            future.exception()  # consume; the result is discarded either way
        self._finish_slot()


def serve_blocking(
    *,
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    workers: Optional[int] = None,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    stats_path: Optional[str] = None,
    install_signal_handlers: bool = True,
    ready_callback: Optional[Callable[[SensingServer], None]] = None,
) -> None:
    """Run a :class:`SensingServer` until drained (the CLI entry point).

    Installs SIGTERM/SIGINT handlers that trigger a graceful drain (when
    the platform's event loop supports it).  ``ready_callback`` fires
    once the transport is bound — the CLI uses it to print the address.
    """

    async def _main() -> None:
        server = SensingServer(
            socket_path=socket_path,
            host=host,
            port=port,
            workers=workers,
            queue_limit=queue_limit,
            stats_path=stats_path,
        )
        await server.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        signum,
                        lambda: loop.create_task(server.shutdown()),
                    )
                except (NotImplementedError, RuntimeError):
                    break
        if ready_callback is not None:
            ready_callback(server)
        await server.wait_stopped()

    asyncio.run(_main())


class ServerThread:
    """A :class:`SensingServer` on a background thread (tests, benchmarks).

    Context manager: ``__enter__`` blocks until the transport is bound,
    ``__exit__`` runs the graceful drain and joins the thread.
    ``connect_kwargs`` are ready-made keywords for
    :func:`repro.api.connect`.
    """

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        stats_path: Optional[str] = None,
    ):
        self._kwargs = {
            "socket_path": socket_path,
            "host": host,
            "port": port,
            "workers": workers,
            "queue_limit": queue_limit,
            "stats_path": stats_path,
        }
        self.server: Optional[SensingServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def connect_kwargs(self) -> Dict[str, str]:
        """Keywords for :func:`repro.api.connect` to reach this server."""
        address = self.server.address
        if address[0] == "unix":
            return {"socket": address[1]}
        return {"tcp": f"{address[1]}:{address[2]}"}

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service thread did not become ready")
        if self._error is not None:
            raise RuntimeError(
                f"service thread failed to start: {self._error}"
            ) from self._error
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        loop, server = self._loop, self.server
        if loop is not None and server is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                server.shutdown(), loop
            )
            future.result(timeout=120)
        if self._thread is not None:
            self._thread.join(timeout=120)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        # The failure must cross the thread boundary to __enter__'s
        # raise, whatever it is.
        except BaseException as exc:  # reprolint: disable=EXC001
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        server = SensingServer(**self._kwargs)
        await server.start()
        self.server = server
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.wait_stopped()
