"""Versioned wire protocol of the sensing service (newline-delimited JSON).

One request per line, one response per line, UTF-8, ``"\\n"`` framed::

    -> {"v": 1, "op": "simulate", "id": "c1", "params": {"seed": 7},
        "deadline_ms": 5000}
    <- {"v": 1, "id": "c1", "ok": true, "op": "simulate", "result": {...}}
    <- {"v": 1, "id": "c1", "ok": false,
        "error": {"code": "queue_full", "message": "..."}}

Operations
----------
========================  ====================================================
``simulate``              one closed-loop run, or a lock-step Monte-Carlo
                          batch when ``params.seed`` is a list (the
                          :class:`repro.hil.batch.BatchedHilEngine` path)
``characterize``          ranked knob evaluations for one situation
``inject``                a run under a fault campaign (mitigation default on)
``profile``               a run with measured-vs-modeled stage latencies
``health``                liveness + queue/in-flight occupancy (inline)
``stats``                 the server metrics snapshot (inline)
``cancel``                cancel a queued request by id (inline)
``shutdown``              graceful drain: stop admitting, finish in-flight
========================  ====================================================

Stability contract (see DESIGN.md): within a protocol version fields
are **additive only** — servers and clients must ignore unknown fields,
never require new ones, and never change the meaning or type of an
existing field.  Anything else bumps :data:`PROTOCOL_VERSION`, and a
server rejects versions it does not speak with ``unsupported_version``
rather than guessing.

Every protocol string (operation names, error codes, field keys) is
defined **here** (error codes canonically on the exception classes in
:mod:`repro.service.errors`); the ``SVC001`` lint rule forbids spelling
them as literals anywhere else, exactly as ``OBS001`` does for
telemetry event names.

Result payloads round-trip losslessly: float64 values serialize through
Python's shortest-repr JSON floats, so a decoded
:class:`~repro.hil.record.HilResult` is *bit-identical* to the instance
the worker produced (tier-1 pinned by ``tests/test_service.py``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.hil.record import CycleRecord, HilResult
from repro.service.errors import (
    BadRequestError,
    DeadlineExceededError,
    QueueFullError,
    RemoteError,
    RequestCancelledError,
    RequestNotFoundError,
    ShuttingDownError,
    UnknownOperationError,
    UnsupportedVersionError,
)
from repro.utils.profiling import StageStats

__all__ = [
    "PROTOCOL_VERSION",
    "OP_SIMULATE",
    "OP_CHARACTERIZE",
    "OP_INJECT",
    "OP_PROFILE",
    "OP_HEALTH",
    "OP_STATS",
    "OP_CANCEL",
    "OP_SHUTDOWN",
    "WORK_OPS",
    "CONTROL_OPS",
    "ALL_OPS",
    "ERR_BAD_REQUEST",
    "ERR_UNSUPPORTED_VERSION",
    "ERR_UNKNOWN_OP",
    "ERR_QUEUE_FULL",
    "ERR_DEADLINE_EXCEEDED",
    "ERR_CANCELLED",
    "ERR_SHUTTING_DOWN",
    "ERR_NOT_FOUND",
    "ERR_INTERNAL",
    "ERROR_CODES",
    "Request",
    "encode_request",
    "decode_request",
    "ok_response",
    "error_response",
    "encode_response",
    "decode_response",
    "hil_result_to_payload",
    "hil_result_from_payload",
    "work_result_to_payload",
    "work_result_from_payload",
]

#: Wire schema version; bumped on any non-additive change.
PROTOCOL_VERSION = 1

# -- operations -------------------------------------------------------------

OP_SIMULATE = "simulate"
OP_CHARACTERIZE = "characterize"
OP_INJECT = "inject"
OP_PROFILE = "profile"
OP_HEALTH = "health"
OP_STATS = "stats"
OP_CANCEL = "cancel"
OP_SHUTDOWN = "shutdown"

#: Operations executed on the worker pool (queued, deadline-checked).
WORK_OPS = (OP_SIMULATE, OP_CHARACTERIZE, OP_INJECT, OP_PROFILE)
#: Operations answered inline on the event loop (never queued).
CONTROL_OPS = (OP_HEALTH, OP_STATS, OP_CANCEL, OP_SHUTDOWN)
ALL_OPS = WORK_OPS + CONTROL_OPS

# -- error codes ------------------------------------------------------------
#
# Canonically defined on the exception classes (repro.service.errors);
# re-exported here so protocol consumers have one import surface.

ERR_BAD_REQUEST = BadRequestError.code
ERR_UNSUPPORTED_VERSION = UnsupportedVersionError.code
ERR_UNKNOWN_OP = UnknownOperationError.code
ERR_QUEUE_FULL = QueueFullError.code
ERR_DEADLINE_EXCEEDED = DeadlineExceededError.code
ERR_CANCELLED = RequestCancelledError.code
ERR_SHUTTING_DOWN = ShuttingDownError.code
ERR_NOT_FOUND = RequestNotFoundError.code
ERR_INTERNAL = RemoteError.code

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_UNSUPPORTED_VERSION,
    ERR_UNKNOWN_OP,
    ERR_QUEUE_FULL,
    ERR_DEADLINE_EXCEEDED,
    ERR_CANCELLED,
    ERR_SHUTTING_DOWN,
    ERR_NOT_FOUND,
    ERR_INTERNAL,
)


def _jsonify(obj: object) -> object:
    # Result payloads carry numpy scalars (e.g. a CycleRecord's
    # measurement_valid); coerce them to their exact Python twins.
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON-serializable")


def _encode_line(document: Dict[str, object]) -> bytes:
    """One canonical protocol line: compact, sorted keys, ``\\n`` framed."""
    text = json.dumps(
        document, sort_keys=True, separators=(",", ":"), default=_jsonify
    )
    return text.encode("utf-8") + b"\n"


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One decoded protocol request."""

    op: str
    request_id: str
    params: Dict[str, object]
    #: Relative deadline in milliseconds from admission; ``None`` = no
    #: deadline.  The server converts to an absolute event-loop time.
    deadline_ms: Optional[float] = None


def encode_request(
    *,
    op: str,
    request_id: str,
    params: Optional[Dict[str, object]] = None,
    deadline_ms: Optional[float] = None,
) -> bytes:
    """Serialize one request line (the client side of the wire)."""
    document: Dict[str, object] = {
        "v": PROTOCOL_VERSION,
        "op": op,
        "id": request_id,
    }
    if params:
        document["params"] = params
    if deadline_ms is not None:
        document["deadline_ms"] = float(deadline_ms)
    return _encode_line(document)


def decode_request(line: Union[str, bytes]) -> Request:
    """Parse and validate one request line (the server side of the wire).

    Raises the typed :mod:`repro.service.errors` exception matching the
    defect: :class:`BadRequestError` for malformed JSON / shapes,
    :class:`UnsupportedVersionError` for a version we do not speak, and
    :class:`UnknownOperationError` for an unregistered ``op``.  Whenever
    the line parsed far enough to recover the request id, it is attached
    as ``exc.request_id`` so the error response can still correlate.
    """
    try:
        document = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BadRequestError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise BadRequestError(
            f"request must be a JSON object, got {type(document).__name__}"
        )
    request_id = document.get("id")
    if not isinstance(request_id, str) or not request_id:
        request_id = None

    def _reject(error: BadRequestError) -> BadRequestError:
        error.request_id = request_id
        return error

    version = document.get("v")
    if version != PROTOCOL_VERSION:
        raise _reject(
            UnsupportedVersionError(
                f"protocol version {version!r} is not supported "
                f"(this server speaks v{PROTOCOL_VERSION})"
            )
        )
    if request_id is None:
        raise BadRequestError("request needs a non-empty string 'id'")
    op = document.get("op")
    if not isinstance(op, str):
        raise _reject(BadRequestError("request needs a string 'op'"))
    if op not in ALL_OPS:
        raise _reject(
            UnknownOperationError(
                f"unknown op {op!r} (ops: {', '.join(ALL_OPS)})"
            )
        )
    params = document.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise _reject(BadRequestError("'params' must be a JSON object"))
    deadline_ms = document.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ) or deadline_ms <= 0:
            raise _reject(
                BadRequestError(
                    f"'deadline_ms' must be a positive number, "
                    f"got {deadline_ms!r}"
                )
            )
        deadline_ms = float(deadline_ms)
    return Request(
        op=op, request_id=request_id, params=params, deadline_ms=deadline_ms
    )


# -- responses --------------------------------------------------------------


def ok_response(
    *, request_id: str, op: str, result: object
) -> Dict[str, object]:
    """A success response envelope (``op`` lets the client decode)."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "op": op,
        "result": result,
    }


def error_response(
    *, request_id: Optional[str], code: str, message: str
) -> Dict[str, object]:
    """An error response envelope (``request_id`` may be unknowable)."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def encode_response(response: Dict[str, object]) -> bytes:
    """Serialize one response line."""
    return _encode_line(response)


def decode_response(line: Union[str, bytes]) -> Dict[str, object]:
    """Parse and shape-check one response line (client side).

    Raises :class:`BadRequestError` when the server's line is not a
    valid response envelope (a framing bug, not a typed service error —
    those travel *inside* valid envelopes).
    """
    try:
        document = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BadRequestError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or "ok" not in document:
        raise BadRequestError("response is not a protocol envelope")
    if document.get("v") != PROTOCOL_VERSION:
        raise UnsupportedVersionError(
            f"response speaks protocol version {document.get('v')!r}, "
            f"this client speaks v{PROTOCOL_VERSION}"
        )
    return document


# -- result payload codecs --------------------------------------------------
#
# Payload "kind" discriminators, so a response is self-describing even
# when archived apart from its request.

_KIND_HIL = "hil_result"
_KIND_HIL_LIST = "hil_result_list"
_KIND_PROFILE = "profile_report"
_KIND_EVALUATIONS = "knob_evaluations"


def hil_result_to_payload(result: HilResult) -> Dict[str, object]:
    """A lossless JSON payload for one closed-loop trace.

    Arrays serialize as JSON number lists; Python's float repr is the
    shortest round-tripping form, so decoding reproduces every float64
    bit-for-bit.  The ephemeral ``profile`` stats ride along when
    present (they are observability data and not part of the
    bit-identity contract).
    """
    payload: Dict[str, object] = {
        "kind": _KIND_HIL,
        "time_s": result.time_s.tolist(),
        "s": result.s.tolist(),
        "lateral_offset": result.lateral_offset.tolist(),
        "y_l_true": result.y_l_true.tolist(),
        "steering": result.steering.tolist(),
        "speed": result.speed.tolist(),
        "cycles": [asdict(cycle) for cycle in result.cycles],
        "crashed": bool(result.crashed),
        "crash_s": result.crash_s,
        "completed": bool(result.completed),
        "manifest": result.manifest,
    }
    if result.profile is not None:
        payload["profile"] = {
            label: asdict(stats) for label, stats in result.profile.items()
        }
    return payload


def hil_result_from_payload(payload: Dict[str, object]) -> HilResult:
    """Inverse of :func:`hil_result_to_payload` (bit-identical)."""
    profile = payload.get("profile")
    crash_s = payload.get("crash_s")
    return HilResult(
        time_s=np.asarray(payload["time_s"], dtype=np.float64),
        s=np.asarray(payload["s"], dtype=np.float64),
        lateral_offset=np.asarray(payload["lateral_offset"], dtype=np.float64),
        y_l_true=np.asarray(payload["y_l_true"], dtype=np.float64),
        steering=np.asarray(payload["steering"], dtype=np.float64),
        speed=np.asarray(payload["speed"], dtype=np.float64),
        cycles=[
            CycleRecord(
                **{
                    **cycle,
                    "invoked": tuple(cycle.get("invoked", ())),
                    "faults": tuple(cycle.get("faults", ())),
                }
            )
            for cycle in payload.get("cycles", ())
        ],
        crashed=bool(payload.get("crashed", False)),
        crash_s=None if crash_s is None else float(crash_s),
        completed=bool(payload.get("completed", False)),
        profile=(
            None
            if profile is None
            else {
                label: StageStats(**stats) for label, stats in profile.items()
            }
        ),
        manifest=payload.get("manifest"),
    )


def _evaluations_to_payload(evaluations: Sequence[object]) -> Dict[str, object]:
    return {
        "kind": _KIND_EVALUATIONS,
        "evaluations": [asdict(evaluation) for evaluation in evaluations],
    }


def _evaluations_from_payload(payload: Dict[str, object]) -> List[object]:
    from repro.core.characterization import KnobEvaluation
    from repro.core.knobs import KnobSetting

    return [
        KnobEvaluation(
            knobs=KnobSetting(**entry["knobs"]),
            mae=float(entry["mae"]),
            crashed=bool(entry["crashed"]),
            period_ms=float(entry["period_ms"]),
            delay_ms=float(entry["delay_ms"]),
        )
        for entry in payload.get("evaluations", ())
    ]


def work_result_to_payload(op: str, *, result: object) -> Dict[str, object]:
    """Serialize a work operation's return value (worker side).

    Dispatches on *op*: ``simulate``/``inject`` produce a
    :class:`HilResult` (or a seed-order list for a Monte-Carlo batch),
    ``profile`` a :class:`repro.api.ProfileReport`, ``characterize`` a
    ranked :class:`~repro.core.characterization.KnobEvaluation` list.
    """
    if op in (OP_SIMULATE, OP_INJECT):
        if isinstance(result, HilResult):
            return hil_result_to_payload(result)
        return {
            "kind": _KIND_HIL_LIST,
            "results": [hil_result_to_payload(item) for item in result],
        }
    if op == OP_PROFILE:
        return {
            "kind": _KIND_PROFILE,
            "result": hil_result_to_payload(result.result),
            "modeled_ms": dict(result.modeled_ms),
        }
    if op == OP_CHARACTERIZE:
        return _evaluations_to_payload(result)
    raise UnknownOperationError(f"op {op!r} has no result payload codec")


def work_result_from_payload(payload: Dict[str, object]) -> object:
    """Rebuild the rich result object from a payload (client side).

    Control-operation results (plain JSON objects without a ``kind``
    discriminator) pass through unchanged.
    """
    if not isinstance(payload, dict):
        return payload
    kind = payload.get("kind")
    if kind == _KIND_HIL:
        return hil_result_from_payload(payload)
    if kind == _KIND_HIL_LIST:
        return [
            hil_result_from_payload(item) for item in payload.get("results", ())
        ]
    if kind == _KIND_PROFILE:
        from repro.api import ProfileReport

        return ProfileReport(
            result=hil_result_from_payload(payload["result"]),
            modeled_ms=dict(payload.get("modeled_ms", {})),
        )
    if kind == _KIND_EVALUATIONS:
        return _evaluations_from_payload(payload)
    return payload
