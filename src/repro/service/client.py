"""Blocking client for the sensing service (the facade's served twin).

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over a Unix-domain or TCP socket and
rebuilds the same rich objects the in-process facade returns — a served
``simulate`` hands back a :class:`~repro.hil.record.HilResult` that is
bit-identical to ``repro.api.simulate`` with the same seed.  Typed
service failures (:class:`~repro.service.errors.QueueFullError`,
:class:`~repro.service.errors.DeadlineExceededError`, ...) raise
client-side exactly as the server classified them.

Construct it through the stable facade::

    with repro.api.connect(socket="repro.sock") as client:
        result = client.simulate(seed=7, length_m=60.0)

The client is deliberately synchronous (plain sockets, stdlib only):
callers that want concurrency open one client per thread or multiplex
with :meth:`ServiceClient.submit` / :meth:`ServiceClient.result`, which
tolerate out-of-order completion by buffering responses per request id.
"""

from __future__ import annotations

import socket as socketlib
from typing import Dict, Optional, Tuple

from repro.service import protocol
from repro.service.errors import BadRequestError, ServiceError, error_for_code

__all__ = ["ServiceClient"]


def _parse_tcp(spec: str) -> Tuple[str, int]:
    """``"host:port"`` split (IPv6 hosts use the last colon)."""
    host, _, port = spec.rpartition(":")
    if not host or not port:
        raise ValueError(
            f"invalid tcp spec {spec!r}: expected 'host:port'"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"invalid tcp spec {spec!r}: port {port!r} is not an integer"
        ) from None


class ServiceClient:
    """One connection to a running sensing service.

    Exactly one of ``socket`` (a Unix-domain socket path) or ``tcp``
    (``"host:port"``) selects the transport.  ``timeout`` is the
    per-receive socket timeout in seconds (``None`` waits forever).
    Context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        *,
        socket: Optional[str] = None,
        tcp: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        if (socket is None) == (tcp is None):
            raise ValueError(
                "choose one transport: socket= (unix path) or tcp= "
                "('host:port')"
            )
        if socket is not None:
            self._sock = socketlib.socket(
                socketlib.AF_UNIX, socketlib.SOCK_STREAM
            )
            self._sock.connect(str(socket))
        else:
            host, port = _parse_tcp(tcp)
            self._sock = socketlib.create_connection((host, port))
        self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        #: responses that arrived while waiting for a different id.
        self._buffered: Dict[str, Dict[str, object]] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._reader.close()
        finally:
            self._sock.close()

    # -- wire primitives ----------------------------------------------------

    def _send(
        self,
        op: str,
        params: Optional[Dict[str, object]],
        deadline_ms: Optional[float],
    ) -> str:
        self._next_id += 1
        request_id = f"c{self._next_id}"
        self._sock.sendall(
            protocol.encode_request(
                op=op,
                request_id=request_id,
                params=params,
                deadline_ms=deadline_ms,
            )
        )
        return request_id

    def _recv(self) -> Dict[str, object]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError(
                "service connection closed while awaiting a response"
            )
        return protocol.decode_response(line)

    def _await_response(
        self, request_id: str, timeout: Optional[float]
    ) -> Dict[str, object]:
        buffered = self._buffered.pop(request_id, None)
        if buffered is not None:
            return buffered
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            while True:
                response = self._recv()
                if response.get("id") == request_id:
                    return response
                other = response.get("id")
                if isinstance(other, str):
                    self._buffered[other] = response
        finally:
            if timeout is not None:
                self._sock.settimeout(previous)

    def _unwrap(self, response: Dict[str, object]) -> object:
        if response.get("ok"):
            return protocol.work_result_from_payload(response.get("result"))
        error = response.get("error")
        if not isinstance(error, dict):
            raise BadRequestError("error response carries no error object")
        raise error_for_code(
            code=str(error.get("code", ServiceError.code)),
            message=str(error.get("message", "")),
        )

    # -- request API --------------------------------------------------------

    def submit(
        self,
        op: str,
        *,
        params: Optional[Dict[str, object]] = None,
        deadline_ms: Optional[float] = None,
    ) -> str:
        """Send one request without waiting; returns its request id.

        Pair with :meth:`result` to collect.  Multiple submissions may
        be outstanding; the service completes work requests in admission
        order per worker, and responses are matched by id regardless of
        arrival order.
        """
        return self._send(op, params, deadline_ms)

    def result(
        self, request_id: str, *, timeout: Optional[float] = None
    ) -> object:
        """Wait for the response to *request_id* and decode it.

        Returns the rich result object (e.g. a
        :class:`~repro.hil.record.HilResult`) or raises the typed
        :class:`~repro.service.errors.ServiceError` the server reported.
        """
        return self._unwrap(self._await_response(request_id, timeout))

    def request(
        self,
        op: str,
        *,
        params: Optional[Dict[str, object]] = None,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> object:
        """:meth:`submit` + :meth:`result` in one round trip."""
        request_id = self._send(op, params, deadline_ms)
        return self.result(request_id, timeout=timeout)

    def cancel(self, request_id: str) -> object:
        """Cancel a queued request (raises ``not_found`` if dispatched)."""
        return self.request(
            protocol.OP_CANCEL, params={"request_id": request_id}
        )

    # -- op shortcuts -------------------------------------------------------

    def simulate(
        self,
        *,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
        **params: object,
    ) -> object:
        """Served :func:`repro.api.simulate`; bit-identical results.

        Accepts the JSON-able facade keywords (``situation``, ``case``,
        ``seed``, ``frame``, ``faults``, ...); a seed *list* runs a
        lock-step Monte-Carlo batch server-side and returns the results
        in seed order.
        """
        return self.request(
            protocol.OP_SIMULATE,
            params=params,
            deadline_ms=deadline_ms,
            timeout=timeout,
        )

    def health(self) -> object:
        """The server's liveness/occupancy snapshot (answered inline)."""
        return self.request(protocol.OP_HEALTH)

    def stats(self) -> object:
        """The server's metrics snapshot: counters, gauges, histograms."""
        return self.request(protocol.OP_STATS)

    def shutdown(self) -> object:
        """Ask the server to drain gracefully (acknowledged immediately).

        Requests already admitted — including this client's — still
        complete and their responses are delivered before the server
        closes.
        """
        return self.request(protocol.OP_SHUTDOWN)
