"""Image signal processing pipeline (paper Fig. 3a, Table II).

Five essential stages transform a RAW Bayer frame into an RGB frame:
demosaic (DM), denoise (DN), color map (CM), gamut map (GM) and tone map
(TM).  The *approximate ISP* knob of the paper selects a subset of the
stages (configurations S0-S8); demosaic is always present because the
rest of the system needs an RGB image.
"""

from repro.isp.stages import (
    IspStage,
    demosaic,
    denoise,
    color_map,
    gamut_map,
    tone_map,
)
from repro.isp.configs import (
    IspConfig,
    ISP_CONFIGS,
    isp_config,
)
from repro.isp.pipeline import IspPipeline

__all__ = [
    "IspStage",
    "demosaic",
    "denoise",
    "color_map",
    "gamut_map",
    "tone_map",
    "IspConfig",
    "ISP_CONFIGS",
    "isp_config",
    "IspPipeline",
]
