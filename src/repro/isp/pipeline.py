"""Configurable ISP pipeline executor."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.isp.configs import IspConfig, isp_config
from repro.isp.stages import (
    IspStage,
    color_map,
    color_map_batch,
    demosaic,
    demosaic_batch,
    denoise,
    denoise_batch,
    gamut_map,
    gamut_map_batch,
    tone_map,
    tone_map_batch,
)
from repro.utils.profiling import profile

__all__ = ["IspPipeline"]

#: Fixed execution order of the stages (Fig. 3a left to right).
_STAGE_ORDER = (
    IspStage.DEMOSAIC,
    IspStage.DENOISE,
    IspStage.COLOR_MAP,
    IspStage.GAMUT_MAP,
    IspStage.TONE_MAP,
)

_STAGE_FN = {
    IspStage.DENOISE: denoise,
    IspStage.COLOR_MAP: color_map,
    IspStage.GAMUT_MAP: gamut_map,
    IspStage.TONE_MAP: tone_map,
}

_STAGE_FN_BATCH = {
    IspStage.DENOISE: denoise_batch,
    IspStage.COLOR_MAP: color_map_batch,
    IspStage.GAMUT_MAP: gamut_map_batch,
    IspStage.TONE_MAP: tone_map_batch,
}

#: Profiler labels, precomputed so the hot loop does no string work.
_STAGE_LABEL = {stage: f"isp.{stage.name.lower()}" for stage in _STAGE_ORDER}


class IspPipeline:
    """Runs the enabled stages of an :class:`IspConfig` in Fig. 3(a) order.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.isp import IspPipeline
    >>> raw = np.random.default_rng(0).random((16, 16), dtype=np.float32)
    >>> rgb = IspPipeline("S5").process(raw)
    >>> rgb.shape
    (16, 16, 3)
    """

    def __init__(self, config: Union[IspConfig, str]):
        if isinstance(config, str):
            config = isp_config(config)
        self.config = config

    @property
    def name(self) -> str:
        """The Table II name of the active configuration."""
        return self.config.name

    def process(self, raw: np.ndarray, tap=None) -> np.ndarray:
        """Transform a RAW Bayer plane into an RGB frame.

        The output domain depends on the configuration: with tone map it
        is display-referred (gamma-encoded); without it stays linear.
        Downstream perception uses adaptive thresholds to cope with both,
        which is exactly the robustness interplay the paper studies.

        ``tap``, if given, is called as ``tap(stage_label, rgb)`` after
        each executed stage (labels are the Fig. 3a acronyms ``"DM"``
        .. ``"TM"``) and once more as ``tap("output", rgb)`` on the
        final frame, and must return the (possibly replaced) frame.
        This is the fault-injection seam of :mod:`repro.faults`: stage
        corruption attaches here instead of branching inside the
        stages.
        """
        with profile(_STAGE_LABEL[IspStage.DEMOSAIC]):
            rgb = demosaic(raw)
        if tap is not None:
            rgb = tap(IspStage.DEMOSAIC.value, rgb)
        for stage in _STAGE_ORDER[1:]:
            if self.config.has(stage):
                with profile(_STAGE_LABEL[stage]):
                    rgb = _STAGE_FN[stage](rgb)
                if tap is not None:
                    rgb = tap(stage.value, rgb)
        if tap is not None:
            rgb = tap("output", rgb)
        # Every stage output (demosaic included) is a fresh array owned
        # by this call, so the final clip runs in place.
        return np.clip(rgb, 0.0, 1.0, out=rgb)

    def process_batch(self, raw: np.ndarray) -> np.ndarray:
        """Transform stacked RAW planes ``(B, H, W)`` into ``(B, H, W, 3)``.

        One batched kernel call per enabled stage; per-lane statistics
        (white-balance gains, auto-exposure) reduce over each lane's own
        trailing axes, so every lane is bit-identical to
        :meth:`process` of that lane alone.  Profiler spans carry
        ``count=B`` so per-frame means stay comparable with serial runs.
        There is no ``tap`` seam here: lanes with an active ISP fault
        tap must take the serial path (the batched driver does exactly
        that).
        """
        batch = raw.shape[0]
        with profile(_STAGE_LABEL[IspStage.DEMOSAIC], count=batch):
            rgb = demosaic_batch(raw)
        for stage in _STAGE_ORDER[1:]:
            if self.config.has(stage):
                with profile(_STAGE_LABEL[stage], count=batch):
                    rgb = _STAGE_FN_BATCH[stage](rgb)
        return np.clip(rgb, 0.0, 1.0, out=rgb)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        stages = "+".join(s.value for s in self.config.stages)
        return f"IspPipeline({self.config.name}: {stages})"
