"""The five ISP stages of Fig. 3(a).

All stages operate on float32 images in linear light unless stated
otherwise.  The stage set matches [8], [12] (Buckler et al.'s
"Reconfiguring the imaging pipeline for computer vision"):

- **demosaic (DM)** — bilinear interpolation of the RGGB mosaic.
- **denoise (DN)** — small-kernel Gaussian smoothing.
- **color map (CM)** — gray-world white balance + color correction
  matrix; undoes illuminant casts (dawn/dusk/night sodium light).
- **gamut map (GM)** — soft saturation compression + clip into [0, 1].
- **tone map (TM)** — auto-exposure gain + sRGB-style gamma; this is the
  stage that rescues low-light frames for thresholding-based perception.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum

import numpy as np
from scipy import ndimage

from repro.utils.scratch import ScratchCache

__all__ = [
    "IspStage",
    "demosaic",
    "demosaic_batch",
    "denoise",
    "denoise_batch",
    "color_map",
    "color_map_batch",
    "gamut_map",
    "gamut_map_batch",
    "tone_map",
    "tone_map_batch",
]

#: Reusable per-shape temporaries for the stage hot paths (masked
#: planes, convolution outputs, exposure buffers).  Everything drawn
#: from here is consumed before the stage returns — stage *outputs*
#: are always fresh arrays because they escape to the caller.
_SCRATCH = ScratchCache(max_entries=24)


class IspStage(str, Enum):
    """Identifier of one ISP stage (paper's DM/DN/CM/GM/TM acronyms)."""

    DEMOSAIC = "DM"
    DENOISE = "DN"
    COLOR_MAP = "CM"
    GAMUT_MAP = "GM"
    TONE_MAP = "TM"


# Bilinear demosaic kernels (normalized at application time by the
# convolved channel mask, which handles borders exactly).
_KERNEL_G = np.array([[0, 1, 0], [1, 4, 1], [0, 1, 0]], dtype=np.float32)
_KERNEL_RB = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.float32)

# The channel masks and their convolved normalizers only depend on the
# frame shape; cache them per resolution.  The cache is LRU-bounded so
# a long sweep over many resolutions (each table set is ~6 full frames
# of float32) cannot grow it without limit.
_DEMOSAIC_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_DEMOSAIC_CACHE_MAX = 8


def _demosaic_tables(height: int, width: int):
    key = (height, width)
    cached = _DEMOSAIC_CACHE.get(key)
    if cached is not None:
        _DEMOSAIC_CACHE.move_to_end(key)
        return cached
    rows = np.arange(height)[:, None]
    cols = np.arange(width)[None, :]
    even_row = rows % 2 == 0
    even_col = cols % 2 == 0
    masks = (
        (even_row & even_col).astype(np.float32),       # R
        (even_row ^ even_col).astype(np.float32),       # G
        (~even_row & ~even_col).astype(np.float32),     # B
    )
    inv_norms = []
    for channel, mask in enumerate(masks):
        kernel = _KERNEL_G if channel == 1 else _KERNEL_RB
        den = ndimage.convolve(mask, kernel, mode="mirror")
        inv_norms.append((1.0 / np.maximum(den, 1e-6)).astype(np.float32))
    tables = (masks, tuple(inv_norms))
    while len(_DEMOSAIC_CACHE) >= _DEMOSAIC_CACHE_MAX:
        _DEMOSAIC_CACHE.popitem(last=False)
    _DEMOSAIC_CACHE[key] = tables
    return tables


def demosaic(raw: np.ndarray) -> np.ndarray:
    """Bilinear demosaic of an RGGB Bayer plane to ``(H, W, 3)`` RGB."""
    if raw.ndim != 2:
        raise ValueError(f"expected a 2-D Bayer plane, got shape {raw.shape}")
    raw32 = np.ascontiguousarray(raw, dtype=np.float32)
    height, width = raw32.shape
    masks, inv_norms = _demosaic_tables(height, width)

    # Masked plane and convolution output cycle through scratch (same
    # values as the allocating form; both are consumed per channel).
    masked = _SCRATCH.get("demosaic-masked", raw32.shape)
    num = _SCRATCH.get("demosaic-num", raw32.shape)
    rgb = np.empty((height, width, 3), dtype=np.float32)
    for channel, (mask, inv_norm) in enumerate(zip(masks, inv_norms)):
        kernel = _KERNEL_G if channel == 1 else _KERNEL_RB
        np.multiply(raw32, mask, out=masked)
        ndimage.convolve(masked, kernel, mode="mirror", output=num)
        np.multiply(num, inv_norm, out=rgb[..., channel])
    return rgb


def demosaic_batch(raw: np.ndarray) -> np.ndarray:
    """Bilinear demosaic of stacked Bayer planes ``(B, H, W)``.

    One convolution call per channel for the whole batch; the kernel
    gains a length-1 batch axis, so no filter tap ever crosses lanes
    and each lane matches :func:`demosaic` bit for bit.
    """
    if raw.ndim != 3:
        raise ValueError(f"expected (B, H, W) Bayer planes, got shape {raw.shape}")
    raw32 = np.ascontiguousarray(raw, dtype=np.float32)
    batch, height, width = raw32.shape
    masks, inv_norms = _demosaic_tables(height, width)

    masked = _SCRATCH.get("demosaic-masked", raw32.shape)
    num = _SCRATCH.get("demosaic-num", raw32.shape)
    rgb = np.empty((batch, height, width, 3), dtype=np.float32)
    for channel, (mask, inv_norm) in enumerate(zip(masks, inv_norms)):
        kernel = _KERNEL_G if channel == 1 else _KERNEL_RB
        np.multiply(raw32, mask, out=masked)
        ndimage.convolve(masked, kernel[None], mode="mirror", output=num)
        np.multiply(num, inv_norm, out=rgb[..., channel])
    return rgb


def denoise(rgb: np.ndarray, sigma: float = 0.8) -> np.ndarray:
    """Gaussian denoise with a small spatial kernel (per channel)."""
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    out = np.empty_like(rgb)
    for channel in range(rgb.shape[2]):
        ndimage.gaussian_filter(
            rgb[..., channel], sigma=sigma, output=out[..., channel], mode="nearest"
        )
    return out


def denoise_batch(rgb: np.ndarray, sigma: float = 0.8) -> np.ndarray:
    """Gaussian denoise of a ``(B, H, W, 3)`` batch (per channel).

    ``sigma=(0, s, s)`` skips the batch axis entirely, so each lane's
    smoothing equals the 2-D :func:`denoise` of that lane.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    out = np.empty_like(rgb)
    for channel in range(rgb.shape[3]):
        ndimage.gaussian_filter(
            rgb[..., channel],
            sigma=(0.0, sigma, sigma),
            output=out[..., channel],
            mode="nearest",
        )
    return out


#: Mild color-correction matrix (saturation boost around the gray axis).
_CCM = np.array(
    [
        [1.25, -0.15, -0.10],
        [-0.10, 1.25, -0.15],
        [-0.10, -0.15, 1.25],
    ],
    dtype=np.float32,
)


def color_map(rgb: np.ndarray, confidence_knee: float = 0.08) -> np.ndarray:
    """Gray-world white balance followed by a color-correction matrix.

    The white balance divides each channel by its mean (relative to the
    overall mean), which removes global illuminant casts; the CCM then
    restores saturation lost by the sensor response.

    At low light the gray-world statistics are dominated by sensor
    noise, so — as production ISPs do — the correction is faded toward
    identity with a confidence factor proportional to the frame's mean
    level (fully off below ``confidence_knee`` of full scale).
    """
    means = rgb.reshape(-1, 3).mean(axis=0)
    overall = float(means.mean())
    confidence = np.float32(np.clip(overall / confidence_knee, 0.0, 1.0))
    gains = overall / np.maximum(means, 1e-6)
    gains = np.clip(gains, 0.5, 2.0).astype(np.float32)
    eye = np.eye(3, dtype=np.float32)
    ccm = confidence * _CCM + (1.0 - confidence) * eye
    balanced = _SCRATCH.get("colormap-balanced", rgb.shape, rgb.dtype)
    np.multiply(rgb, confidence * gains + (np.float32(1.0) - confidence), out=balanced)
    return balanced @ ccm.T


def color_map_batch(rgb: np.ndarray, confidence_knee: float = 0.08) -> np.ndarray:
    """White balance + CCM of a ``(B, H, W, 3)`` batch, per-lane stats.

    The per-lane gray-world statistics replicate the serial scalar
    promotion exactly: :func:`color_map` computes confidence from the
    Python float ``overall`` (double precision), while its gains stay in
    float32 because NEP 50 demotes the Python scalar against the float32
    means.  Widening only the confidence term reproduces both.
    """
    batch = rgb.shape[0]
    means = rgb.reshape(batch, -1, 3).mean(axis=1)
    overall = means.mean(axis=1)
    confidence = np.clip(
        # The serial stage divides a Python float: double precision by
        # NEP 50, so the batch must widen before dividing.
        overall.astype(np.float64) / confidence_knee,  # reprolint: disable=PRF001
        0.0,
        1.0,
    ).astype(np.float32)
    gains = overall[:, None] / np.maximum(means, np.float32(1e-6))
    gains = np.clip(gains, 0.5, 2.0).astype(np.float32)
    eye = np.eye(3, dtype=np.float32)
    ccm = (
        confidence[:, None, None] * _CCM
        + (np.float32(1.0) - confidence)[:, None, None] * eye
    )
    scale = confidence[:, None] * gains + (np.float32(1.0) - confidence)[:, None]
    balanced = _SCRATCH.get("colormap-balanced", rgb.shape, rgb.dtype)
    np.multiply(rgb, scale[:, None, None, :], out=balanced)
    out = np.empty_like(rgb)
    for lane in range(batch):
        # (H*W, 3) @ (3, 3) per lane: the batched-matmul kernel choice
        # differs from the serial one, so lanes multiply one at a time
        # into views of the output (bit-identical, still one big op).
        np.matmul(balanced[lane], ccm[lane].T, out=out[lane])
    return out


def gamut_map(rgb: np.ndarray, knee: float = 0.85) -> np.ndarray:
    """Soft-compress out-of-gamut values, then clip into [0, 1].

    Values above *knee* are rolled off smoothly so saturated lane
    markings keep local contrast instead of flat-clipping.
    """
    if not 0.0 < knee < 1.0:
        raise ValueError(f"knee must be in (0, 1), got {knee}")
    x = _SCRATCH.get("gamut-clipped", rgb.shape, rgb.dtype)
    np.clip(rgb, 0.0, None, out=x)
    span = 1.0 - knee
    compressed = _SCRATCH.get("gamut-compressed", rgb.shape, rgb.dtype)
    np.subtract(x, knee, out=compressed)
    compressed /= span
    np.tanh(compressed, out=compressed)
    compressed *= span
    compressed += knee
    return np.where(x > knee, compressed, x).astype(np.float32)


def gamut_map_batch(rgb: np.ndarray, knee: float = 0.85) -> np.ndarray:
    """Gamut compression of a ``(B, H, W, 3)`` batch.

    :func:`gamut_map` is purely elementwise, so the batch simply flows
    through it; this alias only documents the batched entry point.
    """
    return gamut_map(rgb, knee=knee)


def tone_map(
    rgb: np.ndarray,
    target_mean: float = 0.40,
    max_gain: float = 8.0,
    gamma: float = 2.2,
) -> np.ndarray:
    """Auto-exposure gain plus display gamma.

    The gain normalizes the frame's mean luminance towards
    *target_mean* (bounded by *max_gain*), then applies a ``1/gamma``
    power curve.  For a daylight frame the gain is ~1 and the stage only
    gamma-encodes; for night/dark frames the gain is what makes lane
    markings separable by thresholding.
    """
    if target_mean <= 0 or max_gain < 1 or gamma <= 0:
        raise ValueError("invalid tone-map parameters")
    luma = rgb @ np.array([0.299, 0.587, 0.114], dtype=np.float32)
    mean = float(luma.mean())
    gain = np.float32(np.clip(target_mean / max(mean, 1e-6), 1.0, max_gain))
    exposed = _SCRATCH.get("tonemap-exposed", rgb.shape, rgb.dtype)
    np.multiply(rgb, gain, out=exposed)
    np.clip(exposed, 0.0, 1.0, out=exposed)
    return np.power(exposed, np.float32(1.0 / gamma))


def tone_map_batch(
    rgb: np.ndarray,
    target_mean: float = 0.40,
    max_gain: float = 8.0,
    gamma: float = 2.2,
) -> np.ndarray:
    """Auto-exposure + gamma of a ``(B, H, W, 3)`` batch, per-lane gain.

    The luma projection runs per lane (gemv and gemm accumulate
    differently); the gain is computed in double precision because the
    serial stage derives it from the Python float ``mean``.
    """
    if target_mean <= 0 or max_gain < 1 or gamma <= 0:
        raise ValueError("invalid tone-map parameters")
    batch = rgb.shape[0]
    weights = np.array([0.299, 0.587, 0.114], dtype=np.float32)
    luma = np.empty(rgb.shape[:3], dtype=np.float32)
    for lane in range(batch):
        np.matmul(rgb[lane], weights, out=luma[lane])
    means = (
        # Serial derives the gain from a Python float (double); widen
        # the per-lane means the same way before the clip.
        luma.reshape(batch, -1).mean(axis=1).astype(np.float64)  # reprolint: disable=PRF001
    )
    gain = np.clip(target_mean / np.maximum(means, 1e-6), 1.0, max_gain).astype(
        np.float32
    )
    exposed = _SCRATCH.get("tonemap-exposed", rgb.shape, rgb.dtype)
    np.multiply(rgb, gain[:, None, None, None], out=exposed)
    np.clip(exposed, 0.0, 1.0, out=exposed)
    return np.power(exposed, np.float32(1.0 / gamma))
