"""ISP pipeline configurations S0-S8 (paper Table II).

Each configuration enables a subset of the five stages; demosaic is
always on.  The ``xavier_runtime_ms`` values are the paper's profiled
runtimes on the NVIDIA AGX Xavier for 512x256 frames — they feed the
platform timing model, *not* our Python execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.isp.stages import IspStage

__all__ = ["IspConfig", "ISP_CONFIGS", "isp_config"]


@dataclass(frozen=True)
class IspConfig:
    """One row of the ISP-knob block of Table II."""

    name: str
    stages: Tuple[IspStage, ...]
    xavier_runtime_ms: float

    def __post_init__(self):
        if IspStage.DEMOSAIC not in self.stages:
            raise ValueError(f"{self.name}: demosaic (DM) cannot be skipped")
        if len(set(self.stages)) != len(self.stages):
            raise ValueError(f"{self.name}: duplicate stages {self.stages}")

    def has(self, stage: IspStage) -> bool:
        """Whether this configuration includes *stage*."""
        return stage in self.stages

    def to_config(self) -> Dict[str, object]:
        """JSON-friendly form for hashing/caching."""
        return {
            "name": self.name,
            "stages": [s.value for s in self.stages],
        }


def _cfg(name: str, acronyms: Tuple[str, ...], runtime: float) -> IspConfig:
    return IspConfig(name, tuple(IspStage(a) for a in acronyms), runtime)


#: Table II ISP knob rows, keyed by name.
ISP_CONFIGS: Dict[str, IspConfig] = {
    cfg.name: cfg
    for cfg in (
        _cfg("S0", ("DM", "DN", "CM", "GM", "TM"), 21.5),
        _cfg("S1", ("DM", "CM", "GM", "TM"), 18.9),
        _cfg("S2", ("DM", "DN", "GM", "TM"), 20.9),
        _cfg("S3", ("DM", "DN", "CM", "TM"), 3.3),
        _cfg("S4", ("DM", "DN", "CM", "GM"), 3.2),
        _cfg("S5", ("DM", "DN"), 3.1),
        _cfg("S6", ("DM", "CM"), 3.2),
        _cfg("S7", ("DM", "GM"), 3.1),
        _cfg("S8", ("DM", "TM"), 3.2),
    )
}


def isp_config(name: str) -> IspConfig:
    """Look up an ISP configuration by name (``"S0"`` .. ``"S8"``)."""
    try:
        return ISP_CONFIGS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown ISP config {name!r}; expected one of {sorted(ISP_CONFIGS)}"
        ) from exc
