"""Sharded, concurrency-safe on-disk store for whole rollouts.

Entries live under ``root/<k[:2]>/<k[2:4]>/<k>.npz`` where ``k`` is the
content address from :func:`repro.cache.keys.rollout_key`; two-level
hash-prefix sharding keeps directory fan-out bounded for large sweeps.
Each entry is the exact archive :meth:`repro.hil.record.HilResult.save`
writes — arrays, cycle records and the telemetry manifest — plus an
embedded copy of the key document, so :meth:`RolloutCache.verify` can
re-hash any entry without knowing how it was produced.

Writes are atomic (``mkstemp`` + :func:`os.replace`, the
``ArtifactCache`` pattern), so concurrent writers of one key each
replace the entry wholesale and readers never observe a torn file.  A
corrupt or truncated entry behaves like a miss.  Loads refresh the
entry's mtime, and stores evict least-recently-used entries past the
size bound (``REPRO_CACHE_MAX_MB``, default 4 GiB).

``REPRO_NO_CACHE=1`` disables every store, and ``REPRO_CACHE_DIR``
relocates the default root, exactly as for ``ArtifactCache``.
"""

from __future__ import annotations

import json
import os
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.cache.keys import rollout_key
from repro.utils.cache import _STALE_TMP_AGE_S, default_cache_dir

__all__ = [
    "CacheStats",
    "RolloutCache",
    "global_stats",
    "resolve_cache",
]

_DEFAULT_MAX_BYTES = 4 * 1024**3


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters (process-wide or per store)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (metrics/bench reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.stores, self.evictions)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an *earlier* snapshot."""
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.stores - earlier.stores,
            self.evictions - earlier.evictions,
        )


#: Process-wide tallies across every counting store (the service and the
#: benchmarks read deltas of this to report hit/miss rates).
_GLOBAL_STATS = CacheStats()


def global_stats() -> CacheStats:
    """The process-wide cache counters (mutated by counting stores)."""
    return _GLOBAL_STATS


#: npz members np.load may fail on for a corrupt/truncated entry.
_LOAD_ERRORS = (OSError, ValueError, KeyError, zipfile.BadZipFile)


class RolloutCache:
    """Content-addressed store of :class:`~repro.hil.record.HilResult`.

    Parameters
    ----------
    root:
        Store directory; default ``<cache dir>/rollouts``.
    max_bytes:
        LRU size bound; default ``$REPRO_CACHE_MAX_MB`` MiB or 4 GiB.
    enabled:
        Force-enable/disable; defaults to honouring ``REPRO_NO_CACHE``.
    count_global:
        Whether this store's hits/misses also tally into
        :func:`global_stats`.  Pool workers pass ``False`` so the
        parent, which re-derives their outcomes, stays the single
        authority on sweep-wide counters for any worker count.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        *,
        max_bytes: Optional[int] = None,
        enabled: Optional[bool] = None,
        count_global: bool = True,
    ):
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_CACHE", "0") != "1"
        if max_bytes is None:
            env = os.environ.get("REPRO_CACHE_MAX_MB")
            max_bytes = (
                int(float(env) * 1024**2) if env else _DEFAULT_MAX_BYTES
            )
        self.root = Path(root) if root is not None else default_cache_dir() / "rollouts"
        self.max_bytes = max_bytes
        self.enabled = enabled
        self.stats = CacheStats()
        self._count_global = count_global

    # -- key -> path -----------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Sharded entry path for a content address."""
        return self.root / key[:2] / key[2:4] / f"{key}.npz"

    def entries(self) -> List[Path]:
        """Every stored entry, sorted by path (stable for tests/CLI)."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*/*.npz"))

    def total_bytes(self) -> int:
        """Bytes currently held by the store (0 if the root is absent)."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    # -- stats -----------------------------------------------------------

    def record(self, *, hits: int = 0, misses: int = 0) -> None:
        """Tally outcomes observed elsewhere (parent-side accounting).

        The sweep runner's pool workers read through the store but do
        not count (their process-local counters would die with the
        pool); the parent calls this once per outcome instead.
        """
        self.stats.hits += hits
        self.stats.misses += misses
        if self._count_global:
            _GLOBAL_STATS.hits += hits
            _GLOBAL_STATS.misses += misses

    def _count(self, field: str) -> None:
        setattr(self.stats, field, getattr(self.stats, field) + 1)
        if self._count_global:
            setattr(_GLOBAL_STATS, field, getattr(_GLOBAL_STATS, field) + 1)

    # -- load / store ----------------------------------------------------

    def load(self, document: Optional[Dict[str, object]]):
        """The cached result for a key document, or ``None`` on a miss.

        ``document=None`` (an uncacheable rollout) is a silent miss
        without counters — there is nothing such a rollout could ever
        hit.  Corrupt entries behave like misses.  A hit refreshes the
        entry's mtime, making eviction least-recently-*used*.
        """
        if not self.enabled or document is None:
            return None
        from repro.hil.record import HilResult

        path = self.path_for(rollout_key(document))
        if not path.exists():
            self._count("misses")
            return None
        try:
            result = HilResult.load(path)
        except _LOAD_ERRORS:
            self._count("misses")
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self._count("hits")
        return result

    def store(self, document: Optional[Dict[str, object]], result) -> Optional[Path]:
        """Atomically persist *result* under its key document's address.

        Returns the entry path, or ``None`` when the store is disabled
        or the rollout is uncacheable.  The canonical JSON of the key
        document is embedded in the archive for :meth:`verify`.
        """
        if not self.enabled or document is None:
            return None
        key = rollout_key(document)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._sweep_tmp(max_age_s=_STALE_TMP_AGE_S)
        result.save(
            path,
            extra_json={
                "cache_key_json": json.dumps(document, sort_keys=True)
            },
        )
        self._count("stores")
        self._evict(protect=path)
        return path

    # -- maintenance -----------------------------------------------------

    def _evict(self, protect: Optional[Path] = None) -> int:
        """Drop least-recently-used entries until under the size bound."""
        total = 0
        aged: List[Tuple[float, int, Path]] = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            aged.append((stat.st_mtime, stat.st_size, path))
        evicted = 0
        aged.sort()
        for mtime, size, path in aged:
            if total <= self.max_bytes:
                break
            if protect is not None and path == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
            self._count("evictions")
        return evicted

    def _sweep_tmp(self, max_age_s: float) -> int:
        """Unlink stale ``*.npz.tmp`` files anywhere under the root.

        Same contract as ``ArtifactCache._sweep_tmp``, extended over the
        shard directories: young temp files may belong to a concurrent
        writer mid-flight and are left alone.
        """
        if not self.root.exists():
            return 0
        now = time.time()
        swept = 0
        for tmp in self.root.glob("**/*.npz.tmp"):
            try:
                if now - tmp.stat().st_mtime >= max_age_s:
                    tmp.unlink()
                    swept += 1
            except OSError:
                continue
        return swept

    def clear(self) -> int:
        """Delete every entry (and stale temp files); return the count."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        self._sweep_tmp(max_age_s=0.0)
        return removed

    def verify(self) -> Tuple[int, List[str]]:
        """Re-hash every entry against its embedded key document.

        Returns ``(checked, problems)``: an entry is a problem when it
        is unreadable, lacks an embedded key, re-hashes to a different
        address than its file name, or sits in the wrong shard.  An
        empty ``problems`` list means the store is self-consistent.
        """
        problems: List[str] = []
        checked = 0
        for path in self.entries():
            checked += 1
            try:
                with np.load(path, allow_pickle=False) as data:
                    if "cache_key_json" not in data.files:
                        problems.append(f"{path}: no embedded cache key")
                        continue
                    document = json.loads(str(data["cache_key_json"][()]))
            except _LOAD_ERRORS as exc:
                problems.append(f"{path}: unreadable ({exc})")
                continue
            key = rollout_key(document)
            if self.path_for(key) != path:
                problems.append(
                    f"{path}: content hashes to {key} "
                    f"(expected at {self.path_for(key)})"
                )
        return checked, problems


def resolve_cache(
    cache: Union[str, Path, None], *, count_global: bool = True
) -> Optional[RolloutCache]:
    """Map the facade's ``cache=`` keyword to a store (or ``None``).

    ``None``/``"off"`` disable caching; ``"auto"`` uses the default
    root; any other string or path is an explicit store root.
    ``REPRO_NO_CACHE=1`` wins over everything and yields ``None``.
    """
    if cache is None or cache == "off":
        return None
    root = None if cache == "auto" else Path(cache)
    store = RolloutCache(root, count_global=count_global)
    return store if store.enabled else None
