"""Canonical cache-key documents for whole-rollout results.

A rollout is a deterministic function of its inputs: the track
geometry, the design case, the knob table, the situation identifier
spec, and the full :class:`~repro.hil.engine.HilConfig` (which carries
the seed, the fault plan and the mitigation policy).  This module turns
those inputs into a *key document* — a plain-JSON dictionary — and
hashes it with the same :func:`repro.utils.cache.config_hash` machinery
every other cache in the package uses.

Two identity fields ride along beside the inputs:

- ``package_version`` — results produced by a different release are
  never trusted (behaviour may have changed anywhere);
- ``kernel`` — the kernel-identity tag (see :func:`kernel_identity_tag`
  and the DESIGN note): simulation kernels are part of the function
  being memoized, so bumping a kernel version invalidates every entry
  produced by the old maths without touching the config schema.

Inputs the document cannot faithfully describe make the rollout
*uncacheable* and :func:`rollout_key_document` returns ``None``: a
situation-identifier **instance** (only registry spec strings and the
``None`` default are serializable), a non-dataclass case object, or a
profiled config (profiling is observational, but ``profile`` is part of
the config hash and a cached result could not carry measured stats
anyway).

This module is the only place rollout cache keys may be constructed —
the ``CAC001`` lint rule rejects ``config_hash`` calls elsewhere, so
every consumer (facade, batch engine, sweep runner, service) agrees on
one key for one rollout.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, List, Optional

from repro.utils.cache import config_hash
from repro.utils.version import __version__

__all__ = [
    "KEY_SCHEMA",
    "ROLLOUT_KERNEL_VERSION",
    "kernel_identity_tag",
    "rollout_key",
    "rollout_key_document",
]

#: Version of the key-document layout itself (bump on field changes).
KEY_SCHEMA = 1

#: Version of the closed-loop rollout kernels (engine stepping, batched
#: sensing, control maths).  Bump whenever a kernel change alters the
#: bits of any rollout — it invalidates every cached entry at once.
ROLLOUT_KERNEL_VERSION = 1


def kernel_identity_tag() -> str:
    """The kernel-identity component of every rollout cache key.

    Combines the rollout-kernel version with the renderer version (the
    renderer is the other numerical kernel whose output feeds the
    loop).  See ``docs/DESIGN.md`` for why this is part of the key.
    """
    from repro.sim.renderer import RENDERER_VERSION

    return f"rollout-v{ROLLOUT_KERNEL_VERSION}/renderer-v{RENDERER_VERSION}"


def _case_entry(case: Any) -> Optional[Any]:
    """JSON form of the design case (``None`` = uncacheable).

    Registry names resolve to their :class:`CaseConfig` first, so
    ``case="case4"`` and ``case=case_config("case4")`` address the same
    entry.
    """
    if isinstance(case, str):
        from repro.core.cases import case_config

        case = case_config(case)
    if is_dataclass(case) and not isinstance(case, type):
        return asdict(case)
    return None


def _table_entry(table: Any) -> Optional[List[list]]:
    """JSON form of the situation -> knob table, sorted for canonicity."""
    if table is None:
        return []
    entries = [
        [list(situation.to_config()), knobs.to_config()]
        for situation, knobs in table.items()
    ]
    entries.sort(key=lambda entry: entry[0])
    return entries


def rollout_key_document(
    *,
    track: Any,
    case: Any,
    table: Any = None,
    identifier: Any = None,
    config: Any = None,
) -> Optional[Dict[str, object]]:
    """The canonical key document for one rollout, or ``None``.

    ``None`` means the rollout is uncacheable (see the module
    docstring); callers then simply run it live.  The document is pure
    JSON (``json.dumps`` needs no coercions), so the exact string the
    store embeds next to each entry re-hashes to the entry's file name
    — that is what ``python -m repro cache --verify`` checks.
    """
    from repro.hil.engine import HilConfig

    if config is None:
        config = HilConfig()
    if config.profile:
        return None
    if identifier is not None and not isinstance(identifier, str):
        return None
    case_entry = _case_entry(case)
    if case_entry is None:
        return None
    document: Dict[str, object] = {
        "schema": KEY_SCHEMA,
        "kernel": kernel_identity_tag(),
        "package_version": __version__,
        "track": track.to_config(),
        "case": case_entry,
        "table": _table_entry(table),
        "identifier": identifier,
        "config": asdict(config),
    }
    try:
        json.dumps(document, sort_keys=True)
    except (TypeError, ValueError):
        # An input the document cannot faithfully serialize (e.g. a
        # fault plan carrying an exotic payload): run it live.
        return None
    return document


def rollout_key(document: Dict[str, object]) -> str:
    """Hash a key document to the store's content address."""
    return config_hash(document)
