"""Content-addressed cache of whole closed-loop rollouts.

The characterization sweep re-runs thousands of rollouts whose outputs
are fully determined by their inputs; this package memoizes them on
disk so a warm sweep (or a repeated facade call) loads results instead
of simulating.  The invariant the test layer enforces end to end: a
cache hit is **bit-identical** to the rerun it replaces — arrays,
cycle records, and the manifest minus its wall-clock bounds.

- :mod:`repro.cache.keys` — canonical key documents and hashing (the
  only legal place to build rollout keys; lint rule ``CAC001``);
- :mod:`repro.cache.store` — the sharded atomic store with LRU bound,
  hit/miss counters and ``verify``.

Consumers: ``repro.simulate(cache=...)``, the batch engine's per-lane
lookup, ``core.characterization`` (workers read through, only the
parent writes back), the service's ``simulate`` op, and the
``python -m repro cache`` CLI.
"""

from repro.cache.keys import (
    KEY_SCHEMA,
    ROLLOUT_KERNEL_VERSION,
    kernel_identity_tag,
    rollout_key,
    rollout_key_document,
)
from repro.cache.store import (
    CacheStats,
    RolloutCache,
    global_stats,
    resolve_cache,
)

__all__ = [
    "KEY_SCHEMA",
    "ROLLOUT_KERNEL_VERSION",
    "CacheStats",
    "RolloutCache",
    "global_stats",
    "kernel_identity_tag",
    "resolve_cache",
    "rollout_key",
    "rollout_key_document",
]
