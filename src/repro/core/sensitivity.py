"""Monte-Carlo knob-sensitivity analysis (paper Sec. III-B, first step).

Before characterizing per situation, the paper runs "Monte-Carlo
simulations of the entire system" to determine *which* system parameters
are sensitive to the operating situation — the analysis that promoted
the ISP configuration, the PR ROI and the vehicle speed to "configurable
knobs" while leaving everything else fixed.

This module reproduces that study: it samples random knob assignments
per situation, runs the closed loop, and decomposes the observed QoC
variance by knob dimension (a main-effect / variance-ratio analysis).
A knob whose main effect explains a large share of the QoC variance is
*sensitive* and worth reconfiguring at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.cases import case_config
from repro.core.knobs import KnobSetting
from repro.core.situation import Situation, situation_by_index
from repro.utils.rng import derive_rng

__all__ = [
    "SensitivityConfig",
    "MonteCarloSample",
    "SensitivityReport",
    "knob_sensitivity",
]

#: Crash runs enter the variance analysis at this MAE (metres): large
#: enough to dominate, finite so variance stays defined.
_CRASH_PENALTY_MAE = 1.0


@dataclass(frozen=True)
class SensitivityConfig:
    """Monte-Carlo study parameters (reduced defaults; paper-scale via
    more samples)."""

    n_samples: int = 24
    isp_names: Sequence[str] = ("S0", "S2", "S3", "S5", "S7", "S8")
    roi_names: Sequence[str] = ("ROI 1", "ROI 2", "ROI 3", "ROI 4", "ROI 5")
    speeds_kmph: Sequence[float] = (30.0, 50.0)
    track_length: float = 90.0
    seed: int = 17

    def to_config(self) -> Dict[str, object]:
        """JSON-friendly form for cache hashing."""
        from repro.sim.renderer import RENDERER_VERSION

        return {
            "n_samples": self.n_samples,
            "isp": list(self.isp_names),
            "roi": list(self.roi_names),
            "speeds": list(self.speeds_kmph),
            "track_length": self.track_length,
            "seed": self.seed,
            "renderer_version": RENDERER_VERSION,
        }


@dataclass
class MonteCarloSample:
    """One random knob assignment and its closed-loop outcome."""

    knobs: KnobSetting
    mae: float
    crashed: bool

    @property
    def effective_mae(self) -> float:
        """MAE with the crash penalty applied."""
        return _CRASH_PENALTY_MAE if self.crashed else self.mae


@dataclass
class SensitivityReport:
    """Variance decomposition of the Monte-Carlo QoC outcomes.

    ``main_effect[knob]`` is the share of total QoC variance explained
    by that knob dimension alone (between-group variance over total
    variance); values near 1 mean the knob dominates.
    """

    situation: Situation
    samples: List[MonteCarloSample] = field(default_factory=list)
    main_effect: Dict[str, float] = field(default_factory=dict)

    def ranked_knobs(self) -> List[str]:
        """Knob dimensions ordered from most to least sensitive."""
        return sorted(self.main_effect, key=self.main_effect.get, reverse=True)


def _main_effect(values: np.ndarray, groups: Sequence) -> float:
    """Between-group share of variance (eta squared)."""
    total_var = float(np.var(values))
    if total_var <= 1e-18:
        return 0.0
    grand_mean = float(values.mean())
    between = 0.0
    for level in set(groups):
        sel = np.array([g == level for g in groups])
        if not sel.any():
            continue
        between += sel.sum() * (float(values[sel].mean()) - grand_mean) ** 2
    return float(between / values.size / total_var)


def knob_sensitivity(
    situation: Optional[Situation] = None,
    config: SensitivityConfig = SensitivityConfig(),
) -> SensitivityReport:
    """Run the Monte-Carlo study for one situation.

    Every sample draws an independent (ISP, ROI, speed) assignment,
    runs the closed loop under the case-4 classifier budget (the
    configuration the knobs would be reconfigured in), and records the
    QoC.  The report decomposes the QoC variance per knob dimension.
    """
    from repro.hil.engine import HilConfig, HilEngine
    from repro.sim.world import static_situation_track

    situation = situation or situation_by_index(1)
    rng = derive_rng(config.seed, "sensitivity")
    case = case_config("case4")
    track = static_situation_track(situation, length=config.track_length)

    samples: List[MonteCarloSample] = []
    for _ in range(config.n_samples):
        knobs = KnobSetting(
            isp=config.isp_names[rng.integers(len(config.isp_names))],
            roi=config.roi_names[rng.integers(len(config.roi_names))],
            speed_kmph=float(
                config.speeds_kmph[rng.integers(len(config.speeds_kmph))]
            ),
        )
        engine = HilEngine(
            track,
            case,
            table={situation: knobs},
            config=HilConfig(seed=config.seed),
        )
        result = engine.run()
        samples.append(
            MonteCarloSample(
                knobs=knobs,
                mae=result.mae(skip_time_s=2.0),
                crashed=result.crashed,
            )
        )

    values = np.array([s.effective_mae for s in samples])
    report = SensitivityReport(situation=situation, samples=samples)
    report.main_effect = {
        "isp": _main_effect(values, [s.knobs.isp for s in samples]),
        "roi": _main_effect(values, [s.knobs.roi for s in samples]),
        "speed": _main_effect(values, [s.knobs.speed_kmph for s in samples]),
    }
    return report
