"""Shipped characterization table (the reproduction's Table III).

Runtime reconfiguration needs the design-time characterization results
(situation -> best knob tuning).  Running the full closed-loop sweep
takes tens of minutes, so the package ships a default table; the
characterization module (:mod:`repro.core.characterization`) regenerates
it from scratch and the Table III benchmark compares the two.

The shipped values follow the structure our sensing substrate exhibits
(see DESIGN.md section 4 for shape agreement with the paper's Table III):

- day and night situations detect most accurately with the cheapest
  configurations (S7: demosaic + gamut map) — the denoise blur of the
  full pipeline smears marking edges — which also buys the fastest
  sampling period (h = 25 ms);
- dawn/dusk keep the color map (S3) against the illuminant cast;
- the dark situation is only detectable with S2 (denoise + gamut + tone
  map), the expensive 20.9 ms config, forcing h = 45 ms;
- turn situations use the matching curved ROI, widened (3/5) for dotted
  lanes, and the 30 kmph speed knob; straights run 50 kmph.
"""

from __future__ import annotations

from typing import Dict

from repro.core.knobs import KnobSetting
from repro.core.situation import (
    LaneForm,
    RoadLayout,
    Scene,
    Situation,
    TABLE3_SITUATIONS,
)

__all__ = ["natural_roi", "natural_speed_kmph", "default_characterization"]

#: ISP knob per scene condition in the shipped table.
_SCENE_ISP: Dict[Scene, str] = {
    Scene.DAY: "S7",
    Scene.NIGHT: "S7",
    Scene.DARK: "S2",
    Scene.DAWN: "S3",
    Scene.DUSK: "S3",
}


def natural_roi(situation: Situation) -> str:
    """The ROI knob matching a situation's layout and lane form.

    Straight roads use ROI 1; turns use the curvature-matched preset,
    widened for dotted lanes (the paper's fine-grained ROI switching).
    """
    if situation.layout is RoadLayout.STRAIGHT:
        return "ROI 1"
    wide = situation.lane_form is LaneForm.DOTTED
    if situation.layout is RoadLayout.RIGHT:
        return "ROI 3" if wide else "ROI 2"
    return "ROI 5" if wide else "ROI 4"


def natural_speed_kmph(situation: Situation) -> float:
    """The speed knob per layout (paper: 50 straight, 30 in turns)."""
    return 50.0 if situation.layout is RoadLayout.STRAIGHT else 30.0


def default_characterization() -> Dict[Situation, KnobSetting]:
    """The shipped situation -> best-knob table for the 21 situations."""
    table: Dict[Situation, KnobSetting] = {}
    for situation in TABLE3_SITUATIONS:
        table[situation] = KnobSetting(
            isp=_SCENE_ISP[situation.scene],
            roi=natural_roi(situation),
            speed_kmph=natural_speed_kmph(situation),
        )
    return table
