"""The evaluated design cases (paper Table V).

=====  ==============================  =====  ==========  =================
case   classifiers                     ISP    PR (ROI)    control [v, h, tau]
=====  ==============================  =====  ==========  =================
1      none                            S0     ROI 1       [50, 25, 24.6]
2      road                            S0     coarse VS   [VS, 35, 30.1]
3      road + lane                     S0     fine VS     [VS, 40, 35.6]
4      road + lane + scene             VS     fine VS     [VS, VS, VS]
var    one per frame (Sec. IV-E)       VS     fine VS     [VS, VS, VS]
=====  ==============================  =====  ==========  =================

``VS`` = varied per situation via the characterization table.  Beyond
the paper's five, ``adaptive`` implements the event-triggered
invocation extension the conclusion sketches as future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.scheduler import (
    CLASSIFIER_NAMES,
    EventTriggeredScheme,
    EveryFrameScheme,
    InvocationScheme,
    VariableScheme,
)

__all__ = ["CaseConfig", "CASES", "case_config"]


@dataclass(frozen=True)
class CaseConfig:
    """Which knobs a design case may vary, and its invocation scheme.

    Attributes
    ----------
    name:
        ``"case1"`` .. ``"case4"`` or ``"variable"``.
    classifiers:
        Classifier set the case deploys (drives the tau budget).
    adapt_roi_coarse:
        Road-classifier-driven ROI switching (ROIs 1/2/4 only).
    adapt_roi_fine:
        Lane-classifier-driven fine ROI switching (adds ROIs 3/5).
    adapt_speed:
        Speed knob follows the road layout.
    adapt_isp:
        Scene/road/lane-driven ISP knob switching (case 4 onwards).
    invocation:
        Which scheme runs the classifiers: ``"every"`` frame (cases
        2-4), the paper's ``"variable"`` one-per-frame scheme, or the
        ``"event"``-triggered extension (one per frame, refresh bursts
        on situation changes / perception misses).
    """

    name: str
    classifiers: Tuple[str, ...]
    adapt_roi_coarse: bool
    adapt_roi_fine: bool
    adapt_speed: bool
    adapt_isp: bool
    invocation: str = "every"

    def __post_init__(self):
        if self.invocation not in ("every", "variable", "event"):
            raise ValueError(f"unknown invocation scheme {self.invocation!r}")

    @property
    def variable_invocation(self) -> bool:
        """Whether only one classifier runs per frame (tau budget)."""
        return self.invocation in ("variable", "event")

    def make_scheme(self, window_ms: float = 300.0) -> InvocationScheme:
        """Instantiate this case's classifier invocation scheme."""
        if self.invocation == "variable":
            return VariableScheme(window_ms)
        if self.invocation == "event":
            return EventTriggeredScheme(max_staleness_ms=4 * window_ms)
        return EveryFrameScheme(self.classifiers)

    def classifier_budget(self) -> Tuple[str, ...]:
        """Classifiers counted in the per-frame tau budget."""
        if self.variable_invocation:
            # Exactly one classifier runs per frame under these schemes;
            # the budget charges a single classifier slot.
            return ("road",)
        return self.classifiers


CASES: Dict[str, CaseConfig] = {
    cfg.name: cfg
    for cfg in (
        CaseConfig(
            name="case1",
            classifiers=(),
            adapt_roi_coarse=False,
            adapt_roi_fine=False,
            adapt_speed=False,
            adapt_isp=False,
        ),
        CaseConfig(
            name="case2",
            classifiers=("road",),
            adapt_roi_coarse=True,
            adapt_roi_fine=False,
            adapt_speed=True,
            adapt_isp=False,
        ),
        CaseConfig(
            name="case3",
            classifiers=("road", "lane"),
            adapt_roi_coarse=True,
            adapt_roi_fine=True,
            adapt_speed=True,
            adapt_isp=False,
        ),
        CaseConfig(
            name="case4",
            classifiers=CLASSIFIER_NAMES,
            adapt_roi_coarse=True,
            adapt_roi_fine=True,
            adapt_speed=True,
            adapt_isp=True,
        ),
        CaseConfig(
            name="variable",
            classifiers=CLASSIFIER_NAMES,
            adapt_roi_coarse=True,
            adapt_roi_fine=True,
            adapt_speed=True,
            adapt_isp=True,
            invocation="variable",
        ),
        CaseConfig(
            name="adaptive",
            classifiers=CLASSIFIER_NAMES,
            adapt_roi_coarse=True,
            adapt_roi_fine=True,
            adapt_speed=True,
            adapt_isp=True,
            invocation="event",
        ),
    )
}


def case_config(name: str) -> CaseConfig:
    """Look up a case by name (``"case1"``..``"case4"``, ``"variable"``)."""
    try:
        return CASES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown case {name!r}; expected one of {sorted(CASES)}"
        ) from exc
