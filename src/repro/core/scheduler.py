"""Classifier invocation scheduling (paper Sec. IV-E).

Two schemes are evaluated:

- :class:`EveryFrameScheme` — a fixed set of classifiers runs on every
  control cycle (cases 2, 3 and 4 of Table V);
- :class:`VariableScheme` — the paper's improved scheme: only one
  classifier per frame.  The road classifier (the one robustness is
  most sensitive to) runs every frame for a 300 ms window; then one
  frame runs the lane classifier instead, the next frame the scene
  classifier, and the cycle repeats.  The window is bounded by the
  look-ahead validity argument of footnote 8 (~400 ms at 50 kmph).
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = [
    "CLASSIFIER_NAMES",
    "InvocationScheme",
    "EveryFrameScheme",
    "VariableScheme",
    "EventTriggeredScheme",
]

#: The three situation classifiers of Table IV.
CLASSIFIER_NAMES: Tuple[str, str, str] = ("road", "lane", "scene")


class InvocationScheme:
    """Decides which classifiers run on each control cycle."""

    def classifiers_for_cycle(self, time_ms: float) -> Tuple[str, ...]:
        """Classifiers to invoke for the cycle starting at *time_ms*."""
        raise NotImplementedError

    def max_concurrent(self) -> int:
        """Upper bound of classifiers per frame (drives the tau budget)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any internal phase state (new run)."""

    def observe(
        self,
        believed_changed: bool,
        measurement_valid: bool,
        identification_failed: bool = False,
    ) -> None:
        """Feedback hook called once per cycle after identification and
        perception; event-triggered schemes react to it, the paper's
        schemes ignore it.  ``identification_failed`` reports that a
        scheduled classifier produced no output this cycle (timeout /
        outage / blind frame — see :mod:`repro.faults`)."""


class EveryFrameScheme(InvocationScheme):
    """A fixed classifier set on every cycle."""

    def __init__(self, classifiers: Sequence[str] = CLASSIFIER_NAMES):
        unknown = set(classifiers) - set(CLASSIFIER_NAMES)
        if unknown:
            raise ValueError(f"unknown classifiers: {sorted(unknown)}")
        self.classifiers = tuple(classifiers)

    def classifiers_for_cycle(self, time_ms: float) -> Tuple[str, ...]:
        return self.classifiers

    def max_concurrent(self) -> int:
        return len(self.classifiers)

    def reset(self) -> None:  # stateless
        pass


class VariableScheme(InvocationScheme):
    """One classifier per frame: road-heavy with periodic lane/scene slots.

    The schedule is phase-based rather than frame-counted so it is
    correct under the varying sampling periods of dynamic ISP knobs:
    within each window of ``window_ms`` the road classifier runs; the
    first cycle after the window boundary runs the lane classifier and
    the one after it the scene classifier.
    """

    def __init__(self, window_ms: float = 300.0):
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        self.window_ms = window_ms
        self._pending_scene = False
        self._last_window_index = -1

    def reset(self) -> None:
        self._pending_scene = False
        self._last_window_index = -1

    def classifiers_for_cycle(self, time_ms: float) -> Tuple[str, ...]:
        if self._pending_scene:
            self._pending_scene = False
            return ("scene",)
        window_index = int(time_ms // self.window_ms)
        if window_index != self._last_window_index and self._last_window_index >= 0:
            self._last_window_index = window_index
            self._pending_scene = True
            return ("lane",)
        self._last_window_index = window_index
        return ("road",)

    def max_concurrent(self) -> int:
        return 1


class EventTriggeredScheme(InvocationScheme):
    """Adaptive invocation — the paper's "more complete scheme" sketch.

    Like :class:`VariableScheme`, exactly one classifier runs per frame
    (so the tau budget is one classifier slot).  The road classifier is
    the default; a *refresh burst* (one frame of lane, one of scene) is
    triggered by events instead of a fixed window:

    - the believed situation changed (something is in flux — confirm the
      other features quickly),
    - perception missed ``miss_threshold`` consecutive frames (the
      active knobs may be wrong for the actual situation),
    - a scheduled classifier failed to produce output (timeout/outage:
      re-confirm the features as soon as the path recovers),
    - nothing refreshed for ``max_staleness_ms`` (safety fallback).
    """

    def __init__(
        self,
        max_staleness_ms: float = 1200.0,
        miss_threshold: int = 2,
    ):
        if max_staleness_ms <= 0:
            raise ValueError("max_staleness_ms must be > 0")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.max_staleness_ms = max_staleness_ms
        self.miss_threshold = miss_threshold
        self.reset()

    def reset(self) -> None:
        self._burst: list = []
        self._misses = 0
        self._last_refresh_ms = 0.0
        self._trigger = False

    def observe(
        self,
        believed_changed: bool,
        measurement_valid: bool,
        identification_failed: bool = False,
    ) -> None:
        if believed_changed or identification_failed:
            self._trigger = True
        if measurement_valid:
            self._misses = 0
        else:
            self._misses += 1
            if self._misses >= self.miss_threshold:
                self._trigger = True
                self._misses = 0

    def classifiers_for_cycle(self, time_ms: float) -> Tuple[str, ...]:
        if self._burst:
            return (self._burst.pop(0),)
        stale = time_ms - self._last_refresh_ms >= self.max_staleness_ms
        if self._trigger or stale:
            self._trigger = False
            self._last_refresh_ms = time_ms
            self._burst = ["scene"]
            return ("lane",)
        return ("road",)

    def max_concurrent(self) -> int:
        return 1
