"""Dynamic runtime reconfiguration (paper Sec. III-D).

Each control cycle:

1. the scheduled classifiers analyse the ISP output and update the
   *believed* situation features (road layout / lane type / scene);
2. the best pre-characterized knob tuning for the believed situation is
   selected: the **PR and control knobs apply in the same cycle**, the
   **ISP knob applies from the next cycle** (the frame was already
   processed with the old ISP configuration) — the paper argues the one
   cycle of extra latency is harmless because situations do not change
   per frame;
3. the cycle's ``(h, tau)`` follow from the ISP configuration that ran
   and the case's classifier budget, via the platform timing model.

Situation identification is abstracted behind
:class:`SituationIdentifier` so the closed loop can run either with the
trained CNN classifiers (:mod:`repro.classifiers`) or with a
ground-truth oracle of configurable accuracy (useful for fast tests and
for isolating perception effects from classification effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.cases import CaseConfig
from repro.core.defaults import (
    default_characterization,
    natural_roi,
    natural_speed_kmph,
)
from repro.core.knobs import KnobSetting
from repro.core.scheduler import InvocationScheme
from repro.core.situation import (
    LaneColor,
    LaneForm,
    RoadLayout,
    Scene,
    Situation,
)
from repro.platform.schedule import PipelineTiming, pipeline_timing
from repro.telemetry import recorder as telemetry
from repro.telemetry.events import (
    DEGRADED_ENTER,
    DEGRADED_EXIT,
    KNOBS_RECONFIGURED,
)
from repro.utils.rng import derive_rng

__all__ = [
    "SituationIdentifier",
    "OracleIdentifier",
    "CycleDecision",
    "MitigationConfig",
    "ReconfigurationManager",
]


class SituationIdentifier:
    """Maps a frame to situation-feature estimates.

    ``identify`` returns a dict with any of the keys ``"road"``
    (:class:`RoadLayout`), ``"lane"`` (``(LaneColor, LaneForm)``) and
    ``"scene"`` (:class:`Scene`) — only for the classifiers in *which*.
    """

    def identify(
        self,
        frame_rgb: np.ndarray,
        which: Tuple[str, ...],
        true_situation: Situation,
    ) -> Dict[str, object]:
        raise NotImplementedError


class OracleIdentifier(SituationIdentifier):
    """Ground-truth identifier with configurable per-call accuracy.

    With ``accuracy < 1`` each invocation independently returns a wrong
    label with probability ``1 - accuracy`` (uniform over the wrong
    classes), modelling the ~0.1 % error rates of Table IV or any
    degraded classifier for sensitivity studies.
    """

    def __init__(self, accuracy: float = 1.0, seed: int = 0):
        if not 0.0 < accuracy <= 1.0:
            raise ValueError(f"accuracy must be in (0, 1], got {accuracy}")
        self.accuracy = accuracy
        self._rng = derive_rng(seed, "oracle-identifier")

    def _maybe_flip(self, true_value, choices):
        if self.accuracy >= 1.0 or self._rng.random() < self.accuracy:
            return true_value
        wrong = [c for c in choices if c != true_value]
        return wrong[self._rng.integers(len(wrong))]

    def identify(
        self,
        frame_rgb: np.ndarray,
        which: Tuple[str, ...],
        true_situation: Situation,
    ) -> Dict[str, object]:
        result: Dict[str, object] = {}
        if "road" in which:
            result["road"] = self._maybe_flip(
                true_situation.layout, list(RoadLayout)
            )
        if "lane" in which:
            true_lane = (true_situation.lane_color, true_situation.lane_form)
            lane_classes = [
                (color, form)
                for color in LaneColor
                for form in LaneForm
            ]
            result["lane"] = self._maybe_flip(true_lane, lane_classes)
        if "scene" in which:
            result["scene"] = self._maybe_flip(true_situation.scene, list(Scene))
        return result


@dataclass(frozen=True)
class CycleDecision:
    """Everything the HiL engine needs for one control cycle."""

    active_isp: str
    invoked_classifiers: Tuple[str, ...]
    roi: str
    speed_kmph: float
    timing: PipelineTiming
    believed: Situation
    #: True when the staleness watchdog selected the safe fallback
    #: knobs instead of the characterized tuning (see
    #: :class:`MitigationConfig`).
    degraded: bool = False


@dataclass(frozen=True)
class MitigationConfig:
    """Graceful-degradation policy for the reconfiguration manager.

    Attach one via ``ReconfigurationManager(mitigation=...)`` (or
    ``HilConfig(mitigation=...)``) to enable:

    - **staleness watchdog** — the manager tracks when identification
      last succeeded; once the believed situation is older than
      ``stale_after_ms`` (classifier outage, persistent timeouts, a
      blind sensor), knob selection falls back to the safe defaults:
      the *natural* ROI of the believed situation and the conservative
      speed, with the active ISP held (no blind switching);
    - **bounded retry** — a classifier invocation that produced no
      output is re-invoked in the next cycle's budget, at most
      ``retry_limit`` times per failure episode (the count resets when
      the classifier succeeds again).

    Without faults the watchdog never fires and no retries are
    scheduled, so an attached-but-idle mitigation leaves closed-loop
    traces bit-identical (the acceptance regression pins this).
    """

    #: Believed-situation age beyond which the safe fallback engages.
    #: 900 ms = three 300 ms invocation windows — every scheme
    #: refreshes at least one feature well inside that.
    stale_after_ms: float = 900.0
    #: Retries per failed classifier invocation (per failure episode).
    retry_limit: int = 1
    #: Fallback speed knob when identification is stale (the paper's
    #: conservative turn speed).
    conservative_speed_kmph: float = 30.0

    def __post_init__(self):
        if self.stale_after_ms <= 0:
            raise ValueError(
                f"stale_after_ms must be > 0, got {self.stale_after_ms}"
            )
        if self.retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {self.retry_limit}")
        if self.conservative_speed_kmph <= 0:
            raise ValueError(
                "conservative_speed_kmph must be > 0, got "
                f"{self.conservative_speed_kmph}"
            )


class ReconfigurationManager:
    """Holds the believed situation and selects knobs per cycle."""

    def __init__(
        self,
        case: CaseConfig,
        table: Optional[Mapping[Situation, KnobSetting]] = None,
        invocation_window_ms: float = 300.0,
        isp_apply_lag: int = 1,
        power_mode: str = "30W",
        mitigation: Optional[MitigationConfig] = None,
    ):
        """``isp_apply_lag`` is the number of cycles between deciding an
        ISP knob and it taking effect.  The paper's scheme is 1 (the
        frame was already processed when the classifiers ran); 0 models
        a hypothetical same-cycle oracle and larger values a slower
        reconfiguration path — exercised by the ablation benchmarks.
        ``power_mode`` rescales the platform's profiled runtimes (the
        paper measures at the Xavier 30 W preset).
        ``invocation_window_ms`` is the variable-scheme window (the
        same keyword as ``HilConfig.invocation_window_ms``); the old
        ``window_ms`` spelling went through a ``DeprecationWarning``
        cycle and was removed in 1.3.0.  ``mitigation`` enables graceful
        degradation (see :class:`MitigationConfig`); ``None`` disables
        it entirely."""
        if isp_apply_lag < 0:
            raise ValueError(f"isp_apply_lag must be >= 0, got {isp_apply_lag}")
        self.case = case
        self.power_mode = power_mode
        self.table = dict(table) if table is not None else default_characterization()
        self.invocation_window_ms = invocation_window_ms
        self.scheme: InvocationScheme = case.make_scheme(invocation_window_ms)
        self.isp_apply_lag = isp_apply_lag
        self.mitigation = mitigation
        self._believed: Optional[Situation] = None
        self._believed_changed = False
        self._active_isp = "S0"
        self._isp_queue: list = []
        self._last_identified_ms = 0.0
        self._identification_failed = False
        self._retry_queue: List[str] = []
        self._retry_counts: Dict[str, int] = {}
        self._last_knobs: Optional[Tuple[str, str, float]] = None
        self._degraded = False

    # -- lifecycle -------------------------------------------------------

    def reset(self, initial_situation: Situation) -> None:
        """Start a run: the believed situation is the starting one."""
        self._believed = initial_situation
        self._believed_changed = False
        self.scheme.reset()
        isp = self._select_isp(initial_situation)
        self._active_isp = isp
        self._isp_queue = []
        self._last_identified_ms = 0.0
        self._identification_failed = False
        self._retry_queue = []
        self._retry_counts = {}
        self._last_knobs = None
        self._degraded = False

    @property
    def believed(self) -> Situation:
        """The currently believed situation (requires :meth:`reset`)."""
        if self._believed is None:
            raise RuntimeError("ReconfigurationManager.reset() was not called")
        return self._believed

    # -- per-cycle protocol ------------------------------------------------

    def begin_cycle(self, time_ms: float) -> Tuple[str, Tuple[str, ...]]:
        """Apply the pending ISP knob and pick this cycle's classifiers.

        Classifier invocations that failed last cycle and were granted
        a retry (see :class:`MitigationConfig`) are appended to the
        scheduled set — the bounded retry rides in this cycle's budget.
        """
        if self._isp_queue and len(self._isp_queue) >= self.isp_apply_lag:
            self._active_isp = self._isp_queue.pop(0)
        invoked = tuple(
            c
            for c in self.scheme.classifiers_for_cycle(time_ms)
            if c in self.case.classifiers
        )
        if self._retry_queue:
            retries = tuple(c for c in self._retry_queue if c not in invoked)
            self._retry_queue = []
            invoked = invoked + retries
        return self._active_isp, invoked

    def integrate_identification(self, features: Mapping[str, object]) -> Situation:
        """Merge classifier outputs into the believed situation."""
        current = self.believed
        layout = features.get("road", current.layout)
        lane = features.get("lane", (current.lane_color, current.lane_form))
        scene = features.get("scene", current.scene)
        color, form = lane  # type: ignore[misc]
        self._believed = Situation(layout, color, form, scene)  # type: ignore[arg-type]
        if self._believed != current:
            self._believed_changed = True
        return self._believed

    def note_identification(
        self,
        time_ms: float,
        succeeded: Tuple[str, ...],
        failed: Tuple[str, ...] = (),
    ) -> None:
        """Record which scheduled classifier invocations produced output.

        Successful identification refreshes the believed situation's
        timestamp (the staleness watchdog's input) and closes any retry
        episode for those classifiers.  Failed invocations (timeout,
        outage, blind frame) are queued for a bounded retry in the next
        cycle when mitigation is enabled.
        """
        if succeeded:
            self._last_identified_ms = time_ms
            for name in succeeded:
                self._retry_counts.pop(name, None)
        if failed:
            self._identification_failed = True
            if self.mitigation is not None:
                for name in failed:
                    used = self._retry_counts.get(name, 0)
                    if used < self.mitigation.retry_limit and name not in self._retry_queue:
                        self._retry_counts[name] = used + 1
                        self._retry_queue.append(name)

    def identification_age_ms(self, time_ms: float) -> float:
        """Age of the believed situation at *time_ms* (0 when fresh)."""
        return max(0.0, time_ms - self._last_identified_ms)

    def is_stale(self, time_ms: float) -> bool:
        """Whether the staleness watchdog would fire at *time_ms*.

        Always False without a :class:`MitigationConfig` or for cases
        that deploy no classifiers (nothing to go stale: the design is
        static by construction).
        """
        if self.mitigation is None or not self.case.classifiers:
            return False
        return self.identification_age_ms(time_ms) > self.mitigation.stale_after_ms

    def observe_measurement(self, measurement_valid: bool) -> None:
        """Per-cycle feedback for adaptive invocation schemes."""
        self.scheme.observe(
            self._believed_changed, measurement_valid, self._identification_failed
        )
        self._believed_changed = False
        self._identification_failed = False

    def preview(self, invoked: Tuple[str, ...] = ()) -> CycleDecision:
        """Knob selection for the believed situation, **without** side
        effects.

        Unlike :meth:`decide`, nothing is enqueued into the ISP apply
        pipeline: a preview is a pure query.  The HiL engine uses it
        before the first cycle to pick the initial vehicle speed — a
        ``decide()`` there would enqueue an ISP knob that
        :meth:`begin_cycle` pops one cycle early, violating the
        ``isp_apply_lag`` contract.
        """
        return self._decision(invoked)

    def decide(
        self, time_ms: float, invoked: Tuple[str, ...]
    ) -> CycleDecision:
        """Select knobs for the believed situation (Sec. III-D rules).

        When the staleness watchdog fires (see :meth:`is_stale`) the
        characterized tuning is *not* trusted: the manager degrades to
        the safe fallback knobs — natural ROI, conservative speed, the
        active ISP held — until identification recovers.
        """
        if self.is_stale(time_ms):
            # Degraded: no ISP switch is enqueued either — switching the
            # pipeline on a stale belief risks making sensing worse.
            decision = self._fallback_decision(invoked)
        else:
            isp = self._select_isp(self.believed)
            # ISP knob switches take effect ``isp_apply_lag`` cycles
            # later (Sec. III-D: one cycle in the paper's scheme).
            if self.isp_apply_lag == 0:
                self._active_isp = isp
                self._isp_queue = []
            else:
                self._isp_queue.append(isp)
                while len(self._isp_queue) > self.isp_apply_lag:
                    self._isp_queue.pop(0)
            decision = self._decision(invoked)
        self._observe_decision(time_ms, decision)
        return decision

    def _observe_decision(self, time_ms: float, decision: CycleDecision) -> None:
        """Telemetry hook for :meth:`decide` (never :meth:`preview`).

        Knob/degraded transition tracking always runs so the emitted
        stream does not depend on *when* telemetry was enabled relative
        to the run; the emits themselves cost one ``is not None`` check
        per decide when telemetry is off.
        """
        knobs = (decision.active_isp, decision.roi, decision.speed_kmph)
        knobs_changed = knobs != self._last_knobs
        self._last_knobs = knobs
        degraded_changed = decision.degraded != self._degraded
        self._degraded = decision.degraded
        rec = telemetry.get_active()
        if rec is None:
            return
        if knobs_changed:
            rec.emit(
                KNOBS_RECONFIGURED,
                time_ms=time_ms,
                isp=decision.active_isp,
                roi=decision.roi,
                speed_kmph=decision.speed_kmph,
                degraded=decision.degraded,
            )
        if degraded_changed:
            rec.emit(
                DEGRADED_ENTER if decision.degraded else DEGRADED_EXIT,
                time_ms=time_ms,
            )

    def _timing(self) -> PipelineTiming:
        """Timing for the currently active ISP and the case's budget."""
        return pipeline_timing(
            self._active_isp,
            self.case.classifier_budget(),
            dynamic_isp=self.case.adapt_isp,
            power_mode=self.power_mode,
        )

    def _decision(self, invoked: Tuple[str, ...]) -> CycleDecision:
        """Assemble the cycle decision from the current manager state."""
        believed = self.believed
        return CycleDecision(
            active_isp=self._active_isp,
            invoked_classifiers=invoked,
            roi=self._select_roi(believed),
            speed_kmph=self._select_speed(believed),
            timing=self._timing(),
            believed=believed,
        )

    def _fallback_decision(self, invoked: Tuple[str, ...]) -> CycleDecision:
        """The safe-default decision used while identification is stale.

        The pre-characterized *natural* knobs of the believed situation
        are the least-risk choice the manager can still justify: the
        natural ROI degrades gracefully if the layout changed, and the
        conservative speed bounds how fast the vehicle runs into
        whatever the stale belief is missing.
        """
        believed = self.believed
        assert self.mitigation is not None  # is_stale() gated on it
        if self.case.adapt_roi_fine:
            roi = natural_roi(believed)
        else:
            roi = self._select_roi(believed)
        if self.case.adapt_speed:
            speed = min(
                self.mitigation.conservative_speed_kmph,
                natural_speed_kmph(believed),
            )
        else:
            speed = self._select_speed(believed)
        return CycleDecision(
            active_isp=self._active_isp,
            invoked_classifiers=invoked,
            roi=roi,
            speed_kmph=speed,
            timing=self._timing(),
            believed=believed,
            degraded=True,
        )

    # -- knob selection ----------------------------------------------------

    def _select_roi(self, believed: Situation) -> str:
        if not self.case.adapt_roi_coarse:
            return "ROI 1"
        if not self.case.adapt_roi_fine:
            # Road classifier only: coarse layout-driven switching.
            if believed.layout is RoadLayout.STRAIGHT:
                return "ROI 1"
            return "ROI 2" if believed.layout is RoadLayout.RIGHT else "ROI 4"
        knobs = self.table.get(believed)
        if knobs is not None:
            return knobs.roi
        return natural_roi(believed)

    def _select_speed(self, believed: Situation) -> float:
        if not self.case.adapt_speed:
            return 50.0
        if self.case.adapt_roi_fine:
            knobs = self.table.get(believed)
            if knobs is not None:
                return knobs.speed_kmph
        # Road classifier only: the layout rule (50 straight / 30 turns).
        return natural_speed_kmph(believed)

    def _select_isp(self, believed: Situation) -> str:
        if not self.case.adapt_isp:
            return "S0"
        knobs = self.table.get(believed)
        if knobs is not None:
            return knobs.isp
        # Fallback for situations outside the characterized set: reuse
        # the knobs of the nearest characterized situation by scene.
        # Sorted by the situation's config tuple so the choice depends
        # only on the table's *contents*, not its insertion order.
        for situation, setting in sorted(
            self.table.items(), key=lambda item: item[0].to_config()
        ):
            if situation.scene is believed.scene:
                return setting.isp
        return "S0"
