"""Configurable knobs of the system (paper Sec. III-B, Table II).

Monte-Carlo sensitivity analysis in the paper identifies three knob
groups that dominate closed-loop QoC:

- **ISP knobs** — which ISP stages run (S0-S8, :mod:`repro.isp.configs`),
- **PR knobs** — which ROI the perception uses (ROI 1-5,
  :mod:`repro.perception.roi`),
- **control knobs** — vehicle speed ``v`` (30 / 50 kmph) plus the
  derived sampling period ``h`` and sensor-to-actuation delay ``tau``.

A :class:`KnobSetting` bundles the three free choices; ``(h, tau)``
always derive from the active pipeline through the platform timing
model (:func:`repro.platform.pipeline_timing`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.isp.configs import ISP_CONFIGS
from repro.platform.schedule import PipelineTiming, pipeline_timing


def _roi_presets():
    # Imported lazily: repro.perception.roi pulls the camera model from
    # repro.sim, whose track module needs repro.core.situation — eager
    # importing here would close an import cycle through the package
    # __init__ modules.
    from repro.perception.roi import ROI_PRESETS

    return ROI_PRESETS

__all__ = [
    "SPEED_CHOICES_KMPH",
    "KnobSetting",
    "knob_space",
]

#: The paper's vehicle-speed knob values (Table II).
SPEED_CHOICES_KMPH: Tuple[float, ...] = (30.0, 50.0)


@dataclass(frozen=True)
class KnobSetting:
    """One point in the configurable-knob space."""

    isp: str
    roi: str
    speed_kmph: float

    def __post_init__(self):
        if self.isp not in ISP_CONFIGS:
            raise ValueError(f"unknown ISP knob {self.isp!r}")
        if self.roi not in _roi_presets():
            raise ValueError(f"unknown ROI knob {self.roi!r}")
        if self.speed_kmph <= 0:
            raise ValueError(f"speed must be > 0, got {self.speed_kmph}")

    @property
    def speed_mps(self) -> float:
        """The speed knob in m/s."""
        return self.speed_kmph / 3.6

    def timing(
        self, classifiers: Sequence[str] = (), dynamic_isp: bool = False
    ) -> PipelineTiming:
        """The ``(tau, h)`` this knob setting implies for a case config."""
        return pipeline_timing(self.isp, classifiers, dynamic_isp=dynamic_isp)

    def to_config(self) -> Dict[str, object]:
        """JSON-friendly form for cache hashing."""
        return {"isp": self.isp, "roi": self.roi, "speed_kmph": self.speed_kmph}

    @classmethod
    def from_config(cls, config: Dict[str, object]) -> "KnobSetting":
        """Inverse of :meth:`to_config`."""
        return cls(
            isp=str(config["isp"]),
            roi=str(config["roi"]),
            speed_kmph=float(config["speed_kmph"]),  # type: ignore[arg-type]
        )


def knob_space(
    isp_names: Sequence[str] = tuple(ISP_CONFIGS),
    roi_names: Optional[Sequence[str]] = None,
    speeds_kmph: Sequence[float] = SPEED_CHOICES_KMPH,
) -> Iterator[KnobSetting]:
    """Iterate the (sub)space of knob settings for characterization."""
    if roi_names is None:
        roi_names = tuple(_roi_presets())
    for isp in isp_names:
        for roi in roi_names:
            for speed in speeds_kmph:
                yield KnobSetting(isp=isp, roi=roi, speed_kmph=speed)
