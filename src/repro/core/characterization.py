"""Hardware- and situation-aware characterization (paper Sec. III-B).

For each situation the knob space (ISP configuration x ROI x vehicle
speed) is evaluated in closed-loop HiL simulation and the tuning with
the best QoC (lowest MAE, crashes disqualify) is recorded — the
reproduction of Table III.

A frame-level prescreen (:func:`repro.perception.evaluation.evaluate_sequence`)
first filters ISP configurations that cannot detect lanes in the
situation at all; the closed-loop budget is then spent on the
survivors: the cheapest detectable configuration (it buys the fastest
sampling period), the most accurate one, and the full pipeline S0.
ROI candidates are the layout-consistent presets.  This mirrors how the
paper prunes with Monte-Carlo sensitivity analysis before HiL runs.

Results are cached on disk (`~/.cache/repro/characterization`) keyed by
the sweep configuration.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.cases import case_config
from repro.core.knobs import KnobSetting
from repro.core.situation import RoadLayout, Situation, TABLE3_SITUATIONS
from repro.isp.configs import ISP_CONFIGS
from repro.perception.evaluation import evaluate_sequence
from repro.platform.profiles import isp_runtime_ms
from repro.sim.world import static_situation_track
from repro.utils.cache import ArtifactCache

__all__ = [
    "CharacterizationConfig",
    "KnobEvaluation",
    "roi_candidates",
    "prescreen_isp",
    "characterize_situation",
    "characterize",
]

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class CharacterizationConfig:
    """Sweep parameters."""

    isp_names: Tuple[str, ...] = tuple(ISP_CONFIGS)
    speeds_kmph: Tuple[float, ...] = (30.0, 50.0)
    track_length: float = 110.0
    prescreen_frames: int = 40
    prescreen_bad_limit: float = 0.25
    max_isp_candidates: int = 3
    #: Knob settings whose MAE is within this relative band of the best
    #: are considered QoC ties; the faster (smaller h, then tau) design
    #: point wins the tie, as nothing distinguishes them statistically.
    tie_tolerance: float = 0.15
    seed: int = 11

    def to_config(self) -> Dict[str, object]:
        """JSON-friendly form for cache hashing."""
        from repro.sim.renderer import RENDERER_VERSION

        return {
            "isp": list(self.isp_names),
            "speeds": list(self.speeds_kmph),
            "track_length": self.track_length,
            "prescreen_frames": self.prescreen_frames,
            "prescreen_bad_limit": self.prescreen_bad_limit,
            "max_isp_candidates": self.max_isp_candidates,
            "tie_tolerance": self.tie_tolerance,
            "seed": self.seed,
            "renderer_version": RENDERER_VERSION,
        }


@dataclass
class KnobEvaluation:
    """Closed-loop result of one knob setting in one situation."""

    knobs: KnobSetting
    mae: float
    crashed: bool
    period_ms: float
    delay_ms: float

    def sort_key(self) -> Tuple[int, float]:
        """Ordering key: crashes last, then ascending MAE."""
        return (1 if self.crashed else 0, self.mae)


def roi_candidates(situation: Situation) -> List[str]:
    """Layout-consistent ROI presets to sweep for a situation."""
    if situation.layout is RoadLayout.STRAIGHT:
        return ["ROI 1"]
    if situation.layout is RoadLayout.RIGHT:
        return ["ROI 2", "ROI 3"]
    return ["ROI 4", "ROI 5"]


def prescreen_isp(
    situation: Situation, config: CharacterizationConfig
) -> List[Tuple[str, float]]:
    """Frame-level detectability of each ISP config: (name, bad_rate)."""
    roi = roi_candidates(situation)[-1]  # widest layout-consistent preset
    results = []
    for isp in config.isp_names:
        stats = evaluate_sequence(
            situation,
            isp,
            roi,
            n_frames=config.prescreen_frames,
            seed=config.seed,
        )
        results.append((isp, stats.bad_frame_rate()))
    return results


def _select_isp_candidates(
    prescreen: Sequence[Tuple[str, float]], config: CharacterizationConfig
) -> List[str]:
    detectable = [
        (isp, bad) for isp, bad in prescreen if bad <= config.prescreen_bad_limit
    ]
    if not detectable:
        # Nothing passes: fall back to the least-bad configuration.
        detectable = [min(prescreen, key=lambda item: item[1])]
    candidates: List[str] = []
    cheapest = min(detectable, key=lambda item: isp_runtime_ms(item[0]))[0]
    candidates.append(cheapest)
    most_accurate = min(detectable, key=lambda item: item[1])[0]
    if most_accurate not in candidates:
        candidates.append(most_accurate)
    if "S0" in (isp for isp, _ in detectable) and "S0" not in candidates:
        candidates.append("S0")
    return candidates[: config.max_isp_candidates]


def characterize_situation(
    situation: Situation,
    config: CharacterizationConfig = CharacterizationConfig(),
) -> List[KnobEvaluation]:
    """Run the sweep for one situation; results sorted best first."""
    # Imported here: the HiL engine composes the whole system, and a
    # module-level import would make repro.core depend on repro.hil
    # circularly (hil's engine imports repro.core.reconfiguration).
    from repro.hil.engine import HilConfig, HilEngine

    prescreen = prescreen_isp(situation, config)
    isp_candidates = _select_isp_candidates(prescreen, config)
    case = case_config("case4")

    evaluations: List[KnobEvaluation] = []
    track = static_situation_track(situation, length=config.track_length)
    for isp in isp_candidates:
        for roi in roi_candidates(situation):
            for speed in config.speeds_kmph:
                knobs = KnobSetting(isp=isp, roi=roi, speed_kmph=speed)
                engine = HilEngine(
                    track,
                    case,
                    table={situation: knobs},
                    config=HilConfig(seed=config.seed),
                )
                result = engine.run()
                timing = knobs.timing(case.classifier_budget(), dynamic_isp=True)
                evaluations.append(
                    KnobEvaluation(
                        knobs=knobs,
                        mae=result.mae(skip_time_s=2.0),
                        crashed=result.crashed,
                        period_ms=timing.period_ms,
                        delay_ms=timing.delay_ms,
                    )
                )
    evaluations.sort(key=KnobEvaluation.sort_key)
    return _tie_break_by_speed(evaluations, config.tie_tolerance)


def _tie_break_by_speed(
    evaluations: List[KnobEvaluation], tolerance: float
) -> List[KnobEvaluation]:
    """Re-rank QoC ties in favour of the faster design point.

    Closed-loop MAE carries simulation noise; settings within
    ``tolerance`` (relative, plus a 2 mm floor) of the best are
    indistinguishable, and among them the design with the smaller
    sampling period (then delay, then higher speed knob) is preferred —
    it is the one the QoC argument of the paper favours.
    """
    if not evaluations or evaluations[0].crashed:
        return evaluations
    best_mae = evaluations[0].mae
    band = best_mae * (1.0 + tolerance) + 0.002

    def rank(ev: KnobEvaluation):
        tied = (not ev.crashed) and ev.mae <= band
        if tied:
            return (0, ev.period_ms, ev.delay_ms, -ev.knobs.speed_kmph, ev.mae)
        return (1, *ev.sort_key(), 0.0, 0.0)

    return sorted(evaluations, key=rank)


def characterize(
    situations: Sequence[Situation] = TABLE3_SITUATIONS,
    config: CharacterizationConfig = CharacterizationConfig(),
    use_cache: bool = True,
    verbose: bool = False,
) -> Dict[Situation, KnobSetting]:
    """Build the situation -> best-knob table (the Table III artifact)."""
    cache = ArtifactCache("characterization", enabled=use_cache)
    table: Dict[Situation, KnobSetting] = {}
    for situation in situations:
        key = {"situation": situation.to_config(), "config": config.to_config()}
        cached = cache.load(key)
        if cached is not None:
            table[situation] = KnobSetting(
                isp=str(cached["isp"][()]),
                roi=str(cached["roi"][()]),
                speed_kmph=float(cached["speed"][()]),
            )
            continue
        evaluations = characterize_situation(situation, config)
        best = evaluations[0]
        if verbose:
            _log.info(
                "%-42s -> %s %s v=%.0f mae=%.2fcm crash=%s",
                situation.describe(),
                best.knobs.isp,
                best.knobs.roi,
                best.knobs.speed_kmph,
                best.mae * 100,
                best.crashed,
            )
        table[situation] = best.knobs
        cache.store(
            key,
            {
                "isp": np.array(best.knobs.isp),
                "roi": np.array(best.knobs.roi),
                "speed": np.array(best.knobs.speed_kmph),
                "mae": np.array(best.mae),
                "crashed": np.array(best.crashed),
            },
        )
    return table
