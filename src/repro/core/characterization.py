"""Hardware- and situation-aware characterization (paper Sec. III-B).

For each situation the knob space (ISP configuration x ROI x vehicle
speed) is evaluated in closed-loop HiL simulation and the tuning with
the best QoC (lowest MAE, crashes disqualify) is recorded — the
reproduction of Table III.

A frame-level prescreen (:func:`repro.perception.evaluation.evaluate_sequence`)
first filters ISP configurations that cannot detect lanes in the
situation at all; the closed-loop budget is then spent on the
survivors: the cheapest detectable configuration (it buys the fastest
sampling period), the most accurate one, and the full pipeline S0.
ROI candidates are the layout-consistent presets.  This mirrors how the
paper prunes with Monte-Carlo sensitivity analysis before HiL runs.

Every evaluation (a prescreen sequence or a closed-loop run) is an
independent, self-seeded simulation, so the sweep fans out across a
process pool (:func:`repro.utils.parallel.parallel_map`): the flat work
list — situation x ISP candidate x ROI x speed — is mapped across
``jobs`` workers and reassembled in submission order, producing a table
bit-identical to the serial path for any worker count.  ``jobs=1``
(the default) never spawns a process.

On top of the process fan-out, ``batch`` composes: each work item
shipped to a worker is a *lane chunk* of up to ``batch`` same-situation
evaluations, advanced lock-step through the batched rollout engine
(:class:`repro.hil.batch.BatchedHilEngine`) or the batched prescreen
(:func:`repro.perception.evaluation.evaluate_sequence_batch`), so the
vectorized render/ISP/perception kernels amortize numpy dispatch across
the whole chunk.  Lane order inside a chunk and chunk order across the
sweep both follow submission order, and every lane is bit-identical to
its serial evaluation — the resulting table does not depend on
``(jobs, batch)``.  ``batch`` resolves explicit > ``$REPRO_BATCH`` >
auto (:func:`repro.utils.parallel.resolve_batch`); ``batch=1`` takes
the original per-task code path.

Results are cached on disk (`~/.cache/repro/characterization`) keyed by
the sweep configuration; only the parent process writes the cache.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cases import case_config
from repro.core.knobs import KnobSetting
from repro.core.situation import RoadLayout, Situation, TABLE3_SITUATIONS
from repro.isp.configs import ISP_CONFIGS
from repro.perception.evaluation import evaluate_sequence, evaluate_sequence_batch
from repro.platform.profiles import isp_runtime_ms
from repro.sim.camera import CameraModel
from repro.telemetry import build_manifest
from repro.utils.cache import ArtifactCache
from repro.utils.parallel import (
    TaskFailure,
    parallel_map,
    resolve_batch,
    resolve_jobs,
)

__all__ = [
    "CharacterizationConfig",
    "KnobEvaluation",
    "roi_candidates",
    "prescreen_isp",
    "characterize_situation",
    "characterize",
]

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class CharacterizationConfig:
    """Sweep parameters."""

    isp_names: Tuple[str, ...] = tuple(ISP_CONFIGS)
    speeds_kmph: Tuple[float, ...] = (30.0, 50.0)
    track_length: float = 110.0
    prescreen_frames: int = 40
    prescreen_bad_limit: float = 0.25
    max_isp_candidates: int = 3
    #: Knob settings whose MAE is within this relative band of the best
    #: are considered QoC ties; the faster (smaller h, then tau) design
    #: point wins the tie, as nothing distinguishes them statistically.
    tie_tolerance: float = 0.15
    #: Frame size of the closed-loop runs (the HiL engine default; tests
    #: shrink it to keep tiny sweeps fast).
    frame_width: int = 384
    frame_height: int = 192
    seed: int = 11

    def to_config(self) -> Dict[str, object]:
        """JSON-friendly form for cache hashing."""
        from repro.sim.renderer import RENDERER_VERSION

        return {
            "isp": list(self.isp_names),
            "speeds": list(self.speeds_kmph),
            "track_length": self.track_length,
            "prescreen_frames": self.prescreen_frames,
            "prescreen_bad_limit": self.prescreen_bad_limit,
            "max_isp_candidates": self.max_isp_candidates,
            "tie_tolerance": self.tie_tolerance,
            "frame": [self.frame_width, self.frame_height],
            "seed": self.seed,
            "renderer_version": RENDERER_VERSION,
        }


@dataclass
class KnobEvaluation:
    """Closed-loop result of one knob setting in one situation."""

    knobs: KnobSetting
    mae: float
    crashed: bool
    period_ms: float
    delay_ms: float

    def sort_key(self) -> Tuple[int, float]:
        """Ordering key: crashes last, then ascending MAE."""
        return (1 if self.crashed else 0, self.mae)


def roi_candidates(situation: Situation) -> List[str]:
    """Layout-consistent ROI presets to sweep for a situation."""
    if situation.layout is RoadLayout.STRAIGHT:
        return ["ROI 1"]
    if situation.layout is RoadLayout.RIGHT:
        return ["ROI 2", "ROI 3"]
    return ["ROI 4", "ROI 5"]


# ---------------------------------------------------------------------------
# picklable work specs + workers (module-level so a process pool can
# ship them; each evaluates one independent, self-seeded simulation)


@dataclass(frozen=True)
class _PrescreenTask:
    """One frame-level detectability evaluation (situation x ISP)."""

    situation: Situation
    isp: str
    config: CharacterizationConfig


@dataclass(frozen=True)
class _KnobTask:
    """One closed-loop evaluation (situation x ISP x ROI x speed)."""

    situation: Situation
    isp: str
    roi: str
    speed_kmph: float
    config: CharacterizationConfig


def _prescreen_worker(task: _PrescreenTask) -> float:
    """Bad-frame rate of one ISP configuration in one situation."""
    config = task.config
    roi = roi_candidates(task.situation)[-1]  # widest layout-consistent preset
    stats = evaluate_sequence(
        task.situation,
        task.isp,
        roi,
        n_frames=config.prescreen_frames,
        seed=config.seed,
        camera=CameraModel(width=config.frame_width, height=config.frame_height),
    )
    return stats.bad_frame_rate()


def _knob_worker(task: _KnobTask) -> KnobEvaluation:
    """Closed-loop QoC of one knob setting in one situation."""
    # Imported here: the HiL engine composes the whole system, and a
    # module-level import would make repro.core depend on repro.hil
    # circularly (hil's engine imports repro.core.reconfiguration).
    from repro.hil.engine import HilConfig, HilEngine
    from repro.sim.world import static_situation_track

    config = task.config
    case = case_config("case4")
    knobs = KnobSetting(isp=task.isp, roi=task.roi, speed_kmph=task.speed_kmph)
    track = static_situation_track(task.situation, length=config.track_length)
    engine = HilEngine(
        track,
        case,
        table={task.situation: knobs},
        config=HilConfig(
            seed=config.seed,
            frame_width=config.frame_width,
            frame_height=config.frame_height,
        ),
    )
    result = engine.run()
    timing = knobs.timing(case.classifier_budget(), dynamic_isp=True)
    return KnobEvaluation(
        knobs=knobs,
        mae=result.mae(skip_time_s=2.0),
        crashed=result.crashed,
        period_ms=timing.period_ms,
        delay_ms=timing.delay_ms,
    )


@dataclass(frozen=True)
class _PrescreenChunk:
    """A lane chunk of same-situation prescreens (shared render)."""

    situation: Situation
    isps: Tuple[str, ...]
    config: CharacterizationConfig


@dataclass(frozen=True)
class _KnobChunk:
    """A lane chunk of same-situation closed-loop evaluations."""

    tasks: Tuple[_KnobTask, ...]


def _prescreen_chunk_worker(chunk: _PrescreenChunk) -> Tuple[float, ...]:
    """Bad-frame rates of a lane chunk of ISP configs, lock-step."""
    config = chunk.config
    roi = roi_candidates(chunk.situation)[-1]  # widest layout-consistent preset
    stats = evaluate_sequence_batch(
        chunk.situation,
        list(chunk.isps),
        roi,
        n_frames=config.prescreen_frames,
        seed=config.seed,
        camera=CameraModel(width=config.frame_width, height=config.frame_height),
    )
    return tuple(s.bad_frame_rate() for s in stats)


def _knob_chunk_worker(chunk: _KnobChunk) -> Tuple[KnobEvaluation, ...]:
    """Closed-loop QoC of a lane chunk of knob settings, lock-step.

    All tasks in a chunk share one situation, so the lanes share one
    track object (the construction is deterministic — a shared instance
    is bit-identical to per-lane copies) and the batched engine can
    group their render calls.
    """
    from repro.hil.batch import BatchedHilEngine
    from repro.hil.engine import HilConfig, HilEngine
    from repro.sim.world import static_situation_track

    if len(chunk.tasks) == 1:
        return (_knob_worker(chunk.tasks[0]),)
    config = chunk.tasks[0].config
    situation = chunk.tasks[0].situation
    case = case_config("case4")
    track = static_situation_track(situation, length=config.track_length)
    knob_settings = [
        KnobSetting(isp=task.isp, roi=task.roi, speed_kmph=task.speed_kmph)
        for task in chunk.tasks
    ]
    engines = [
        HilEngine(
            track,
            case,
            table={situation: knobs},
            config=HilConfig(
                seed=config.seed,
                frame_width=config.frame_width,
                frame_height=config.frame_height,
            ),
        )
        for knobs in knob_settings
    ]
    results = BatchedHilEngine(engines).run()
    evaluations = []
    for knobs, result in zip(knob_settings, results):
        timing = knobs.timing(case.classifier_budget(), dynamic_isp=True)
        evaluations.append(
            KnobEvaluation(
                knobs=knobs,
                mae=result.mae(skip_time_s=2.0),
                crashed=result.crashed,
                period_ms=timing.period_ms,
                delay_ms=timing.delay_ms,
            )
        )
    return tuple(evaluations)


def _chunked(items: Sequence, size: int) -> List[tuple]:
    """Split *items* into consecutive tuples of at most *size*."""
    return [tuple(items[i : i + size]) for i in range(0, len(items), size)]


def _knob_tasks(
    situation: Situation,
    isp_candidates: Sequence[str],
    config: CharacterizationConfig,
) -> List[_KnobTask]:
    """The flat closed-loop work list for one situation, in sweep order."""
    return [
        _KnobTask(situation, isp, roi, speed, config)
        for isp in isp_candidates
        for roi in roi_candidates(situation)
        for speed in config.speeds_kmph
    ]


def _collect_evaluations(
    results: Sequence[Union[KnobEvaluation, TaskFailure]],
    situation: Situation,
) -> List[KnobEvaluation]:
    """Drop failed tasks (already logged by the runner); require one hit."""
    evaluations = [r for r in results if not isinstance(r, TaskFailure)]
    if not evaluations:
        raise RuntimeError(
            f"every knob evaluation failed for situation "
            f"'{situation.describe()}'"
        )
    return evaluations


# ---------------------------------------------------------------------------
# sweep drivers


def prescreen_isp(
    situation: Situation,
    config: CharacterizationConfig,
    jobs: Optional[int] = None,
    batch: Union[int, str, None] = None,
) -> List[Tuple[str, float]]:
    """Frame-level detectability of each ISP config: (name, bad_rate).

    A prescreen evaluation that crashes counts as fully undetectable
    (bad rate 1.0) so the sweep continues on the survivors.  ``batch``
    groups up to that many ISP configs per worker into one lock-step
    evaluation sharing the rendered sequence (bit-identical per lane;
    a failed chunk marks all its lanes undetectable).
    """
    n_jobs = resolve_jobs(jobs)
    lanes = resolve_batch(batch, len(config.isp_names), n_jobs)
    if lanes <= 1:
        tasks = [_PrescreenTask(situation, isp, config) for isp in config.isp_names]
        rates = parallel_map(_prescreen_worker, tasks, jobs=n_jobs, label="prescreen")
    else:
        chunks = [
            _PrescreenChunk(situation, isps, config)
            for isps in _chunked(config.isp_names, lanes)
        ]
        chunk_rates = parallel_map(
            _prescreen_chunk_worker, chunks, jobs=n_jobs, label="prescreen"
        )
        rates = []
        for chunk, result in zip(chunks, chunk_rates):
            if isinstance(result, TaskFailure):
                rates.extend([result] * len(chunk.isps))
            else:
                rates.extend(result)
    return [
        (isp, 1.0 if isinstance(rate, TaskFailure) else rate)
        for isp, rate in zip(config.isp_names, rates)
    ]


def _select_isp_candidates(
    prescreen: Sequence[Tuple[str, float]], config: CharacterizationConfig
) -> List[str]:
    detectable = [
        (isp, bad) for isp, bad in prescreen if bad <= config.prescreen_bad_limit
    ]
    if not detectable:
        # Nothing passes: fall back to the least-bad configuration.
        detectable = [min(prescreen, key=lambda item: item[1])]
    candidates: List[str] = []
    cheapest = min(detectable, key=lambda item: isp_runtime_ms(item[0]))[0]
    candidates.append(cheapest)
    most_accurate = min(detectable, key=lambda item: item[1])[0]
    if most_accurate not in candidates:
        candidates.append(most_accurate)
    if "S0" in (isp for isp, _ in detectable) and "S0" not in candidates:
        candidates.append("S0")
    return candidates[: config.max_isp_candidates]


def _run_knob_tasks(
    tasks: Sequence[_KnobTask],
    n_jobs: int,
    batch: Union[int, str, None],
) -> List[Union[KnobEvaluation, TaskFailure]]:
    """Evaluate a flat knob-task list, chunked into lock-step lanes.

    Chunks never span situations (their lanes share one track), and the
    flattened results keep submission order, so the output is the same
    list ``parallel_map(_knob_worker, tasks, ...)`` would produce — for
    any ``(jobs, batch)`` composition.
    """
    lanes = resolve_batch(batch, len(tasks), n_jobs)
    if lanes <= 1:
        return parallel_map(_knob_worker, tasks, jobs=n_jobs, label="characterize")
    by_situation: Dict[Situation, List[int]] = {}
    for i, task in enumerate(tasks):
        by_situation.setdefault(task.situation, []).append(i)
    index_chunks: List[Tuple[int, ...]] = [
        group
        for indices in by_situation.values()
        for group in _chunked(indices, lanes)
    ]
    chunks = [
        _KnobChunk(tuple(tasks[i] for i in group)) for group in index_chunks
    ]
    chunk_results = parallel_map(
        _knob_chunk_worker, chunks, jobs=n_jobs, label="characterize"
    )
    flat: List[Union[KnobEvaluation, TaskFailure]] = [None] * len(tasks)  # type: ignore[list-item]
    for group, result in zip(index_chunks, chunk_results):
        for lane, i in enumerate(group):
            if isinstance(result, TaskFailure):
                flat[i] = TaskFailure(index=i, item=tasks[i], error=result.error)
            else:
                flat[i] = result[lane]
    return flat


def characterize_situation(
    situation: Situation,
    config: CharacterizationConfig = CharacterizationConfig(),
    jobs: Optional[int] = None,
    batch: Union[int, str, None] = None,
) -> List[KnobEvaluation]:
    """Run the sweep for one situation; results sorted best first.

    ``jobs`` fans the independent evaluations out across a process pool
    (see :mod:`repro.utils.parallel`), ``batch`` sizes the lock-step
    lane chunks each worker advances through the batched rollout
    engine; the returned ranking is bit-identical for any combination.
    """
    n_jobs = resolve_jobs(jobs)
    prescreen = prescreen_isp(situation, config, jobs=n_jobs, batch=batch)
    isp_candidates = _select_isp_candidates(prescreen, config)
    tasks = _knob_tasks(situation, isp_candidates, config)
    results = _run_knob_tasks(tasks, n_jobs, batch)
    evaluations = _collect_evaluations(results, situation)
    evaluations.sort(key=KnobEvaluation.sort_key)
    return _tie_break_by_speed(evaluations, config.tie_tolerance)


def _tie_break_by_speed(
    evaluations: List[KnobEvaluation], tolerance: float
) -> List[KnobEvaluation]:
    """Re-rank QoC ties in favour of the faster design point.

    Closed-loop MAE carries simulation noise; settings within
    ``tolerance`` (relative, plus a 2 mm floor) of the best are
    indistinguishable, and among them the design with the smaller
    sampling period (then delay, then higher speed knob) is preferred —
    it is the one the QoC argument of the paper favours.
    """
    if not evaluations or evaluations[0].crashed:
        return evaluations
    best_mae = evaluations[0].mae
    band = best_mae * (1.0 + tolerance) + 0.002

    def rank(ev: KnobEvaluation):
        tied = (not ev.crashed) and ev.mae <= band
        if tied:
            return (0, ev.period_ms, ev.delay_ms, -ev.knobs.speed_kmph, ev.mae)
        return (1, *ev.sort_key(), 0.0, 0.0)

    return sorted(evaluations, key=rank)


def characterize(
    situations: Sequence[Situation] = TABLE3_SITUATIONS,
    config: CharacterizationConfig = CharacterizationConfig(),
    use_cache: bool = True,
    verbose: bool = False,
    jobs: Optional[int] = None,
    batch: Union[int, str, None] = None,
) -> Dict[Situation, KnobSetting]:
    """Build the situation -> best-knob table (the Table III artifact).

    The sweep is flattened across *all* uncached situations — first the
    prescreen grid (situation x ISP), then the closed-loop grid
    (situation x ISP candidate x ROI x speed) — and fanned out with
    :func:`repro.utils.parallel.parallel_map`, so a multi-situation
    table saturates ``jobs`` workers even when single situations have
    few knob settings.  ``batch`` additionally sizes the lock-step lane
    chunk each worker advances in one batched rollout.  The result is
    bit-identical to the serial path (``jobs=1``, ``batch=1``) for any
    ``(jobs, batch)`` composition.
    """
    n_jobs = resolve_jobs(jobs)
    cache = ArtifactCache("characterization", enabled=use_cache)
    table: Dict[Situation, KnobSetting] = {}
    keys: Dict[Situation, Dict[str, object]] = {}
    misses: List[Situation] = []
    for situation in situations:
        key = {"situation": situation.to_config(), "config": config.to_config()}
        keys[situation] = key
        cached = cache.load(key)
        if cached is not None:
            table[situation] = KnobSetting(
                isp=str(cached["isp"][()]),
                roi=str(cached["roi"][()]),
                speed_kmph=float(cached["speed"][()]),
            )
            continue
        misses.append(situation)
    if not misses:
        return table

    # Phase 1: flat prescreen grid over every uncached situation.
    n_isp = len(config.isp_names)
    lanes = resolve_batch(batch, n_isp * len(misses), n_jobs)
    if lanes <= 1:
        prescreen_tasks = [
            _PrescreenTask(situation, isp, config)
            for situation in misses
            for isp in config.isp_names
        ]
        rates = parallel_map(
            _prescreen_worker, prescreen_tasks, jobs=n_jobs, label="prescreen"
        )
    else:
        prescreen_chunks = [
            _PrescreenChunk(situation, isps, config)
            for situation in misses
            for isps in _chunked(config.isp_names, lanes)
        ]
        chunk_rates = parallel_map(
            _prescreen_chunk_worker, prescreen_chunks, jobs=n_jobs, label="prescreen"
        )
        rates = []
        for chunk, result in zip(prescreen_chunks, chunk_rates):
            if isinstance(result, TaskFailure):
                rates.extend([result] * len(chunk.isps))
            else:
                rates.extend(result)
    candidates: Dict[Situation, List[str]] = {}
    for i, situation in enumerate(misses):
        chunk = rates[i * n_isp : (i + 1) * n_isp]
        prescreen = [
            (isp, 1.0 if isinstance(rate, TaskFailure) else rate)
            for isp, rate in zip(config.isp_names, chunk)
        ]
        candidates[situation] = _select_isp_candidates(prescreen, config)

    # Phase 2: flat closed-loop grid (situation x ISP x ROI x speed).
    flat_tasks: List[_KnobTask] = []
    spans: Dict[Situation, Tuple[int, int]] = {}
    for situation in misses:
        tasks = _knob_tasks(situation, candidates[situation], config)
        spans[situation] = (len(flat_tasks), len(flat_tasks) + len(tasks))
        flat_tasks.extend(tasks)
    results = _run_knob_tasks(flat_tasks, n_jobs, batch)

    for situation in misses:
        start, end = spans[situation]
        evaluations = _collect_evaluations(results[start:end], situation)
        evaluations.sort(key=KnobEvaluation.sort_key)
        evaluations = _tie_break_by_speed(evaluations, config.tie_tolerance)
        best = evaluations[0]
        if verbose:
            _log.info(
                "%-42s -> %s %s v=%.0f mae=%.2fcm crash=%s",
                situation.describe(),
                best.knobs.isp,
                best.knobs.roi,
                best.knobs.speed_kmph,
                best.mae * 100,
                best.crashed,
            )
        table[situation] = best.knobs
        cache.store(
            keys[situation],
            {
                "isp": np.array(best.knobs.isp),
                "roi": np.array(best.knobs.roi),
                "speed": np.array(best.knobs.speed_kmph),
                "mae": np.array(best.mae),
                "crashed": np.array(best.crashed),
                # Provenance manifest: the same shape HilResult.save
                # persists, keyed on this artifact's cache identity.
                "manifest_json": np.array(
                    json.dumps(build_manifest(config=keys[situation]))
                ),
            },
        )
    return table
