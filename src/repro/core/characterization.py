"""Hardware- and situation-aware characterization (paper Sec. III-B).

For each situation the knob space (ISP configuration x ROI x vehicle
speed) is evaluated in closed-loop HiL simulation and the tuning with
the best QoC (lowest MAE, crashes disqualify) is recorded — the
reproduction of Table III.

A frame-level prescreen (:func:`repro.perception.evaluation.evaluate_sequence`)
first filters ISP configurations that cannot detect lanes in the
situation at all; the closed-loop budget is then spent on the
survivors: the cheapest detectable configuration (it buys the fastest
sampling period), the most accurate one, and the full pipeline S0.
ROI candidates are the layout-consistent presets.  This mirrors how the
paper prunes with Monte-Carlo sensitivity analysis before HiL runs.

Every evaluation (a prescreen sequence or a closed-loop run) is an
independent, self-seeded simulation, so the sweep fans out across a
process pool (:func:`repro.utils.parallel.parallel_map`): the flat work
list — situation x ISP candidate x ROI x speed — is mapped across
``jobs`` workers and reassembled in submission order, producing a table
bit-identical to the serial path for any worker count.  ``jobs=1``
(the default) never spawns a process.

On top of the process fan-out, ``batch`` composes: each work item
shipped to a worker is a *lane chunk* of up to ``batch`` same-situation
evaluations, advanced lock-step through the batched rollout engine
(:class:`repro.hil.batch.BatchedHilEngine`) or the batched prescreen
(:func:`repro.perception.evaluation.evaluate_sequence_batch`), so the
vectorized render/ISP/perception kernels amortize numpy dispatch across
the whole chunk.  Lane order inside a chunk and chunk order across the
sweep both follow submission order, and every lane is bit-identical to
its serial evaluation — the resulting table does not depend on
``(jobs, batch)``.  ``batch`` resolves explicit > ``$REPRO_BATCH`` >
auto (:func:`repro.utils.parallel.resolve_batch`); ``batch=1`` takes
the original per-task code path.

Every closed-loop rollout reads through the content-addressed rollout
store (:mod:`repro.cache`) when caching is on: pool workers look
entries up (and report hits/misses home), but only the parent process
writes fresh results back — the write path never fans out.  Prescreen
bad-rate vectors are small derived artifacts and use a plain
``ArtifactCache`` namespace, parent-side only.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache import (
    RolloutCache,
    kernel_identity_tag,
    resolve_cache,
    rollout_key_document,
)
from repro.core.cases import case_config
from repro.core.knobs import KnobSetting
from repro.core.situation import RoadLayout, Situation, TABLE3_SITUATIONS
from repro.isp.configs import ISP_CONFIGS
from repro.perception.evaluation import evaluate_sequence, evaluate_sequence_batch
from repro.platform.profiles import isp_runtime_ms
from repro.sim.camera import CameraModel
from repro.utils.cache import ArtifactCache
from repro.utils.parallel import (
    TaskFailure,
    parallel_map,
    resolve_batch,
    resolve_jobs,
)

__all__ = [
    "CharacterizationConfig",
    "KnobEvaluation",
    "roi_candidates",
    "prescreen_isp",
    "characterize_situation",
    "characterize",
]

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class CharacterizationConfig:
    """Sweep parameters."""

    isp_names: Tuple[str, ...] = tuple(ISP_CONFIGS)
    speeds_kmph: Tuple[float, ...] = (30.0, 50.0)
    track_length: float = 110.0
    prescreen_frames: int = 40
    prescreen_bad_limit: float = 0.25
    max_isp_candidates: int = 3
    #: Knob settings whose MAE is within this relative band of the best
    #: are considered QoC ties; the faster (smaller h, then tau) design
    #: point wins the tie, as nothing distinguishes them statistically.
    tie_tolerance: float = 0.15
    #: Frame size of the closed-loop runs (the HiL engine default; tests
    #: shrink it to keep tiny sweeps fast).
    frame_width: int = 384
    frame_height: int = 192
    seed: int = 11

    def to_config(self) -> Dict[str, object]:
        """JSON-friendly form for cache hashing."""
        from repro.sim.renderer import RENDERER_VERSION

        return {
            "isp": list(self.isp_names),
            "speeds": list(self.speeds_kmph),
            "track_length": self.track_length,
            "prescreen_frames": self.prescreen_frames,
            "prescreen_bad_limit": self.prescreen_bad_limit,
            "max_isp_candidates": self.max_isp_candidates,
            "tie_tolerance": self.tie_tolerance,
            "frame": [self.frame_width, self.frame_height],
            "seed": self.seed,
            "renderer_version": RENDERER_VERSION,
        }


@dataclass
class KnobEvaluation:
    """Closed-loop result of one knob setting in one situation."""

    knobs: KnobSetting
    mae: float
    crashed: bool
    period_ms: float
    delay_ms: float

    def sort_key(self) -> Tuple[int, float]:
        """Ordering key: crashes last, then ascending MAE."""
        return (1 if self.crashed else 0, self.mae)


def roi_candidates(situation: Situation) -> List[str]:
    """Layout-consistent ROI presets to sweep for a situation."""
    if situation.layout is RoadLayout.STRAIGHT:
        return ["ROI 1"]
    if situation.layout is RoadLayout.RIGHT:
        return ["ROI 2", "ROI 3"]
    return ["ROI 4", "ROI 5"]


# ---------------------------------------------------------------------------
# picklable work specs + workers (module-level so a process pool can
# ship them; each evaluates one independent, self-seeded simulation)


@dataclass(frozen=True)
class _PrescreenTask:
    """One frame-level detectability evaluation (situation x ISP)."""

    situation: Situation
    isp: str
    config: CharacterizationConfig


@dataclass(frozen=True)
class _KnobTask:
    """One closed-loop evaluation (situation x ISP x ROI x speed).

    ``cache_root`` travels inside the spec (not the environment: forked
    workers inherit the parent env as of *pool creation*, which may
    predate the sweep).  ``None`` disables the worker's read-through.
    """

    situation: Situation
    isp: str
    roi: str
    speed_kmph: float
    config: CharacterizationConfig
    cache_root: Optional[str] = None


@dataclass
class _KnobOutcome:
    """What one knob evaluation sends back to the parent.

    ``document`` is the rollout's cache-key document (``None`` when
    caching is off); ``result`` is the freshly simulated
    :class:`~repro.hil.record.HilResult` for the parent to write back —
    ``None`` on a cache hit, so a hit is recognizable as
    ``document and not result``.
    """

    evaluation: KnobEvaluation
    document: Optional[Dict[str, object]] = None
    result: Optional[object] = None


def _prescreen_worker(task: _PrescreenTask) -> float:
    """Bad-frame rate of one ISP configuration in one situation."""
    config = task.config
    roi = roi_candidates(task.situation)[-1]  # widest layout-consistent preset
    stats = evaluate_sequence(
        task.situation,
        task.isp,
        roi,
        n_frames=config.prescreen_frames,
        seed=config.seed,
        camera=CameraModel(width=config.frame_width, height=config.frame_height),
    )
    return stats.bad_frame_rate()


def _worker_store(cache_root: Optional[str]) -> Optional[RolloutCache]:
    """A read-through store for a worker, or ``None`` (caching off).

    Workers never tally the process-wide counters: their processes die
    with the pool, so the parent re-derives hits/misses from the
    outcomes instead (identical for any worker count).
    """
    if not cache_root:
        return None
    return RolloutCache(cache_root, enabled=True, count_global=False)


def _evaluate_result(knobs: KnobSetting, case, result) -> KnobEvaluation:
    """The :class:`KnobEvaluation` a rollout trace implies.

    Pure function of the (byte-exact) trace, so a cache hit scores
    identically to the run it replaced.
    """
    timing = knobs.timing(case.classifier_budget(), dynamic_isp=True)
    return KnobEvaluation(
        knobs=knobs,
        mae=result.mae(skip_time_s=2.0),
        crashed=result.crashed,
        period_ms=timing.period_ms,
        delay_ms=timing.delay_ms,
    )


def _knob_worker(task: _KnobTask) -> _KnobOutcome:
    """Closed-loop QoC of one knob setting in one situation."""
    # Imported here: the HiL engine composes the whole system, and a
    # module-level import would make repro.core depend on repro.hil
    # circularly (hil's engine imports repro.core.reconfiguration).
    from repro.hil.engine import HilConfig, HilEngine
    from repro.sim.world import static_situation_track

    config = task.config
    case = case_config("case4")
    knobs = KnobSetting(isp=task.isp, roi=task.roi, speed_kmph=task.speed_kmph)
    track = static_situation_track(task.situation, length=config.track_length)
    hil_config = HilConfig(
        seed=config.seed,
        frame_width=config.frame_width,
        frame_height=config.frame_height,
    )
    document = None
    store = _worker_store(task.cache_root)
    if store is not None:
        document = rollout_key_document(
            track=track,
            case=case,
            table={task.situation: knobs},
            identifier=None,
            config=hil_config,
        )
        cached = store.load(document)
        if cached is not None:
            return _KnobOutcome(_evaluate_result(knobs, case, cached), document)
    engine = HilEngine(
        track, case, table={task.situation: knobs}, config=hil_config
    )
    result = engine.run()
    return _KnobOutcome(
        _evaluate_result(knobs, case, result),
        document,
        result if document is not None else None,
    )


@dataclass(frozen=True)
class _PrescreenChunk:
    """A lane chunk of same-situation prescreens (shared render)."""

    situation: Situation
    isps: Tuple[str, ...]
    config: CharacterizationConfig


@dataclass(frozen=True)
class _KnobChunk:
    """A lane chunk of same-situation closed-loop evaluations."""

    tasks: Tuple[_KnobTask, ...]


def _prescreen_chunk_worker(chunk: _PrescreenChunk) -> Tuple[float, ...]:
    """Bad-frame rates of a lane chunk of ISP configs, lock-step."""
    config = chunk.config
    roi = roi_candidates(chunk.situation)[-1]  # widest layout-consistent preset
    stats = evaluate_sequence_batch(
        chunk.situation,
        list(chunk.isps),
        roi,
        n_frames=config.prescreen_frames,
        seed=config.seed,
        camera=CameraModel(width=config.frame_width, height=config.frame_height),
    )
    return tuple(s.bad_frame_rate() for s in stats)


def _knob_chunk_worker(chunk: _KnobChunk) -> Tuple[_KnobOutcome, ...]:
    """Closed-loop QoC of a lane chunk of knob settings, lock-step.

    All tasks in a chunk share one situation, so the lanes share one
    track object (the construction is deterministic — a shared instance
    is bit-identical to per-lane copies) and the batched engine can
    group their render calls.  Cached lanes drop out before the batch
    is built — only the misses are rolled — which stays bit-identical
    because lanes are independent.
    """
    from repro.hil.batch import BatchedHilEngine
    from repro.hil.engine import HilConfig, HilEngine
    from repro.sim.world import static_situation_track

    if len(chunk.tasks) == 1:
        return (_knob_worker(chunk.tasks[0]),)
    config = chunk.tasks[0].config
    situation = chunk.tasks[0].situation
    case = case_config("case4")
    track = static_situation_track(situation, length=config.track_length)
    hil_config = HilConfig(
        seed=config.seed,
        frame_width=config.frame_width,
        frame_height=config.frame_height,
    )
    knob_settings = [
        KnobSetting(isp=task.isp, roi=task.roi, speed_kmph=task.speed_kmph)
        for task in chunk.tasks
    ]
    documents: List[Optional[Dict[str, object]]] = [None] * len(knob_settings)
    results: List[Optional[object]] = [None] * len(knob_settings)
    store = _worker_store(chunk.tasks[0].cache_root)
    if store is not None:
        documents = [
            rollout_key_document(
                track=track,
                case=case,
                table={situation: knobs},
                identifier=None,
                config=hil_config,
            )
            for knobs in knob_settings
        ]
        results = [store.load(document) for document in documents]
    live = [i for i, result in enumerate(results) if result is None]
    if live:
        engines = [
            HilEngine(
                track,
                case,
                table={situation: knob_settings[i]},
                config=hil_config,
            )
            for i in live
        ]
        for i, result in zip(live, BatchedHilEngine(engines).run()):
            results[i] = result
    live_set = set(live)
    return tuple(
        _KnobOutcome(
            _evaluate_result(knobs, case, result),
            documents[i],
            result if i in live_set and documents[i] is not None else None,
        )
        for i, (knobs, result) in enumerate(zip(knob_settings, results))
    )


def _chunked(items: Sequence, size: int) -> List[tuple]:
    """Split *items* into consecutive tuples of at most *size*."""
    return [tuple(items[i : i + size]) for i in range(0, len(items), size)]


def _knob_tasks(
    situation: Situation,
    isp_candidates: Sequence[str],
    config: CharacterizationConfig,
    cache_root: Optional[str] = None,
) -> List[_KnobTask]:
    """The flat closed-loop work list for one situation, in sweep order."""
    return [
        _KnobTask(situation, isp, roi, speed, config, cache_root)
        for isp in isp_candidates
        for roi in roi_candidates(situation)
        for speed in config.speeds_kmph
    ]


def _collect_outcomes(
    results: Sequence[Union[_KnobOutcome, TaskFailure]],
    situation: Situation,
) -> List[_KnobOutcome]:
    """Drop failed tasks (already logged by the runner); require one hit."""
    outcomes = [r for r in results if not isinstance(r, TaskFailure)]
    if not outcomes:
        raise RuntimeError(
            f"every knob evaluation failed for situation "
            f"'{situation.describe()}'"
        )
    return outcomes


def _absorb_outcomes(
    store: Optional[RolloutCache],
    outcomes: Sequence[Union[_KnobOutcome, TaskFailure]],
) -> None:
    """Parent-only write-back plus sweep-wide hit/miss accounting.

    Workers read through the store but never write; every fresh rollout
    arrives here exactly once (submission order), so each key is stored
    once per sweep — there is no duplicate recompute to race on.
    """
    if store is None:
        return
    hits = misses = 0
    for outcome in outcomes:
        if isinstance(outcome, TaskFailure) or outcome.document is None:
            continue
        if outcome.result is None:
            hits += 1
        else:
            misses += 1
            store.store(outcome.document, outcome.result)
    store.record(hits=hits, misses=misses)


# ---------------------------------------------------------------------------
# sweep drivers


def _prescreen_key(
    situation: Situation, config: CharacterizationConfig
) -> Dict[str, object]:
    """Cache key for one situation's prescreen bad-rate vector."""
    return {
        "situation": situation.to_config(),
        "config": config.to_config(),
        "kernel": kernel_identity_tag(),
    }


def _load_prescreen(
    cache: ArtifactCache, situation: Situation, config: CharacterizationConfig
) -> Optional[List[Tuple[str, float]]]:
    """The cached (isp, bad_rate) list for a situation, or ``None``."""
    cached = cache.load(_prescreen_key(situation, config))
    if cached is None or "rates" not in cached:
        return None
    rates = cached["rates"]
    if len(rates) != len(config.isp_names):
        return None
    return [
        (isp, float(rate)) for isp, rate in zip(config.isp_names, rates)
    ]


def _store_prescreen(
    cache: ArtifactCache,
    situation: Situation,
    config: CharacterizationConfig,
    prescreen: Sequence[Tuple[str, float]],
) -> None:
    """Persist a situation's prescreen bad-rate vector (parent only)."""
    cache.store(
        _prescreen_key(situation, config),
        {"rates": np.array([rate for _, rate in prescreen], dtype=float)},
    )


def prescreen_isp(
    situation: Situation,
    config: CharacterizationConfig,
    jobs: Optional[int] = None,
    batch: Union[int, str, None] = None,
    use_cache: bool = False,
) -> List[Tuple[str, float]]:
    """Frame-level detectability of each ISP config: (name, bad_rate).

    A prescreen evaluation that crashes counts as fully undetectable
    (bad rate 1.0) so the sweep continues on the survivors.  ``batch``
    groups up to that many ISP configs per worker into one lock-step
    evaluation sharing the rendered sequence (bit-identical per lane;
    a failed chunk marks all its lanes undetectable).  ``use_cache``
    reuses the per-situation bad-rate vector from the artifact cache
    (float64 round-trips exactly, so cached and fresh prescreens select
    the same ISP candidates).
    """
    cache = ArtifactCache("prescreen", enabled=use_cache)
    cached = _load_prescreen(cache, situation, config)
    if cached is not None:
        return cached
    n_jobs = resolve_jobs(jobs)
    lanes = resolve_batch(batch, len(config.isp_names), n_jobs)
    if lanes <= 1:
        tasks = [_PrescreenTask(situation, isp, config) for isp in config.isp_names]
        rates = parallel_map(_prescreen_worker, tasks, jobs=n_jobs, label="prescreen")
    else:
        chunks = [
            _PrescreenChunk(situation, isps, config)
            for isps in _chunked(config.isp_names, lanes)
        ]
        chunk_rates = parallel_map(
            _prescreen_chunk_worker, chunks, jobs=n_jobs, label="prescreen"
        )
        rates = []
        for chunk, result in zip(chunks, chunk_rates):
            if isinstance(result, TaskFailure):
                rates.extend([result] * len(chunk.isps))
            else:
                rates.extend(result)
    prescreen = [
        (isp, 1.0 if isinstance(rate, TaskFailure) else rate)
        for isp, rate in zip(config.isp_names, rates)
    ]
    _store_prescreen(cache, situation, config, prescreen)
    return prescreen


def _select_isp_candidates(
    prescreen: Sequence[Tuple[str, float]], config: CharacterizationConfig
) -> List[str]:
    detectable = [
        (isp, bad) for isp, bad in prescreen if bad <= config.prescreen_bad_limit
    ]
    if not detectable:
        # Nothing passes: fall back to the least-bad configuration.
        detectable = [min(prescreen, key=lambda item: item[1])]
    candidates: List[str] = []
    cheapest = min(detectable, key=lambda item: isp_runtime_ms(item[0]))[0]
    candidates.append(cheapest)
    most_accurate = min(detectable, key=lambda item: item[1])[0]
    if most_accurate not in candidates:
        candidates.append(most_accurate)
    if "S0" in (isp for isp, _ in detectable) and "S0" not in candidates:
        candidates.append("S0")
    return candidates[: config.max_isp_candidates]


def _run_knob_tasks(
    tasks: Sequence[_KnobTask],
    n_jobs: int,
    batch: Union[int, str, None],
) -> List[Union[_KnobOutcome, TaskFailure]]:
    """Evaluate a flat knob-task list, chunked into lock-step lanes.

    Chunks never span situations (their lanes share one track), and the
    flattened results keep submission order, so the output is the same
    list ``parallel_map(_knob_worker, tasks, ...)`` would produce — for
    any ``(jobs, batch)`` composition.
    """
    lanes = resolve_batch(batch, len(tasks), n_jobs)
    if lanes <= 1:
        return parallel_map(_knob_worker, tasks, jobs=n_jobs, label="characterize")
    by_situation: Dict[Situation, List[int]] = {}
    for i, task in enumerate(tasks):
        by_situation.setdefault(task.situation, []).append(i)
    index_chunks: List[Tuple[int, ...]] = [
        group
        for indices in by_situation.values()
        for group in _chunked(indices, lanes)
    ]
    chunks = [
        _KnobChunk(tuple(tasks[i] for i in group)) for group in index_chunks
    ]
    chunk_results = parallel_map(
        _knob_chunk_worker, chunks, jobs=n_jobs, label="characterize"
    )
    flat: List[Union[_KnobOutcome, TaskFailure]] = [None] * len(tasks)  # type: ignore[list-item]
    for group, result in zip(index_chunks, chunk_results):
        for lane, i in enumerate(group):
            if isinstance(result, TaskFailure):
                flat[i] = TaskFailure(index=i, item=tasks[i], error=result.error)
            else:
                flat[i] = result[lane]
    return flat


def characterize_situation(
    situation: Situation,
    config: CharacterizationConfig = CharacterizationConfig(),
    jobs: Optional[int] = None,
    batch: Union[int, str, None] = None,
    cache: Union[str, Path, None] = None,
) -> List[KnobEvaluation]:
    """Run the sweep for one situation; results sorted best first.

    ``jobs`` fans the independent evaluations out across a process pool
    (see :mod:`repro.utils.parallel`), ``batch`` sizes the lock-step
    lane chunks each worker advances through the batched rollout
    engine; the returned ranking is bit-identical for any combination.
    ``cache`` selects the rollout store (``"auto"``/``"off"``/path as
    for :func:`repro.api.simulate`; default off): workers read cached
    rollouts through it, fresh rollouts are written back by this
    (parent) process only, and the ranking is the same for any cache
    state because hits are byte-equal to reruns.
    """
    n_jobs = resolve_jobs(jobs)
    store = resolve_cache(cache)
    prescreen = prescreen_isp(
        situation, config, jobs=n_jobs, batch=batch,
        use_cache=store is not None,
    )
    isp_candidates = _select_isp_candidates(prescreen, config)
    tasks = _knob_tasks(
        situation,
        isp_candidates,
        config,
        cache_root=str(store.root) if store is not None else None,
    )
    results = _run_knob_tasks(tasks, n_jobs, batch)
    outcomes = _collect_outcomes(results, situation)
    _absorb_outcomes(store, outcomes)
    evaluations = [outcome.evaluation for outcome in outcomes]
    evaluations.sort(key=KnobEvaluation.sort_key)
    return _tie_break_by_speed(evaluations, config.tie_tolerance)


def _tie_break_by_speed(
    evaluations: List[KnobEvaluation], tolerance: float
) -> List[KnobEvaluation]:
    """Re-rank QoC ties in favour of the faster design point.

    Closed-loop MAE carries simulation noise; settings within
    ``tolerance`` (relative, plus a 2 mm floor) of the best are
    indistinguishable, and among them the design with the smaller
    sampling period (then delay, then higher speed knob) is preferred —
    it is the one the QoC argument of the paper favours.
    """
    if not evaluations or evaluations[0].crashed:
        return evaluations
    best_mae = evaluations[0].mae
    band = best_mae * (1.0 + tolerance) + 0.002

    def rank(ev: KnobEvaluation):
        tied = (not ev.crashed) and ev.mae <= band
        if tied:
            return (0, ev.period_ms, ev.delay_ms, -ev.knobs.speed_kmph, ev.mae)
        return (1, *ev.sort_key(), 0.0, 0.0)

    return sorted(evaluations, key=rank)


def characterize(
    situations: Sequence[Situation] = TABLE3_SITUATIONS,
    config: CharacterizationConfig = CharacterizationConfig(),
    use_cache: bool = True,
    verbose: bool = False,
    jobs: Optional[int] = None,
    batch: Union[int, str, None] = None,
    cache: Union[str, Path, None] = None,
) -> Dict[Situation, KnobSetting]:
    """Build the situation -> best-knob table (the Table III artifact).

    The sweep is flattened across *all* situations — first the
    prescreen grid (situation x ISP), then the closed-loop grid
    (situation x ISP candidate x ROI x speed) — and fanned out with
    :func:`repro.utils.parallel.parallel_map`, so a multi-situation
    table saturates ``jobs`` workers even when single situations have
    few knob settings.  ``batch`` additionally sizes the lock-step lane
    chunk each worker advances in one batched rollout.  The result is
    bit-identical to the serial path (``jobs=1``, ``batch=1``) for any
    ``(jobs, batch)`` composition.

    With caching on (``use_cache=True``, the default) every closed-loop
    rollout reads through the content-addressed rollout store
    (:mod:`repro.cache`) — workers look entries up, only this parent
    process writes fresh results back — and each situation's prescreen
    bad-rate vector is reused from the artifact cache.  A warm sweep
    therefore recomputes nothing, and returns the same table because
    cache hits are byte-equal to the reruns they replace.  ``cache``
    overrides the store selection (``"auto"``/``"off"``/explicit root);
    by default ``use_cache`` picks ``"auto"`` or ``"off"``.
    """
    n_jobs = resolve_jobs(jobs)
    if cache is None:
        cache = "auto" if use_cache else None
    store = resolve_cache(cache)
    pre_cache = ArtifactCache("prescreen", enabled=store is not None)
    table: Dict[Situation, KnobSetting] = {}

    # Phase 1: flat prescreen grid over the situations without a cached
    # bad-rate vector.
    prescreens: Dict[Situation, List[Tuple[str, float]]] = {}
    pending: List[Situation] = []
    for situation in situations:
        cached = _load_prescreen(pre_cache, situation, config)
        if cached is not None:
            prescreens[situation] = cached
        else:
            pending.append(situation)
    n_isp = len(config.isp_names)
    if pending:
        lanes = resolve_batch(batch, n_isp * len(pending), n_jobs)
        if lanes <= 1:
            prescreen_tasks = [
                _PrescreenTask(situation, isp, config)
                for situation in pending
                for isp in config.isp_names
            ]
            rates = parallel_map(
                _prescreen_worker, prescreen_tasks, jobs=n_jobs, label="prescreen"
            )
        else:
            prescreen_chunks = [
                _PrescreenChunk(situation, isps, config)
                for situation in pending
                for isps in _chunked(config.isp_names, lanes)
            ]
            chunk_rates = parallel_map(
                _prescreen_chunk_worker, prescreen_chunks, jobs=n_jobs, label="prescreen"
            )
            rates = []
            for chunk, result in zip(prescreen_chunks, chunk_rates):
                if isinstance(result, TaskFailure):
                    rates.extend([result] * len(chunk.isps))
                else:
                    rates.extend(result)
        for i, situation in enumerate(pending):
            chunk = rates[i * n_isp : (i + 1) * n_isp]
            prescreen = [
                (isp, 1.0 if isinstance(rate, TaskFailure) else rate)
                for isp, rate in zip(config.isp_names, chunk)
            ]
            prescreens[situation] = prescreen
            _store_prescreen(pre_cache, situation, config, prescreen)
    candidates: Dict[Situation, List[str]] = {
        situation: _select_isp_candidates(prescreens[situation], config)
        for situation in situations
    }

    # Phase 2: flat closed-loop grid (situation x ISP x ROI x speed),
    # read through the rollout store.
    cache_root = str(store.root) if store is not None else None
    flat_tasks: List[_KnobTask] = []
    spans: Dict[Situation, Tuple[int, int]] = {}
    for situation in situations:
        tasks = _knob_tasks(
            situation, candidates[situation], config, cache_root=cache_root
        )
        spans[situation] = (len(flat_tasks), len(flat_tasks) + len(tasks))
        flat_tasks.extend(tasks)
    results = _run_knob_tasks(flat_tasks, n_jobs, batch)
    _absorb_outcomes(store, results)

    for situation in situations:
        start, end = spans[situation]
        outcomes = _collect_outcomes(results[start:end], situation)
        evaluations = [outcome.evaluation for outcome in outcomes]
        evaluations.sort(key=KnobEvaluation.sort_key)
        evaluations = _tie_break_by_speed(evaluations, config.tie_tolerance)
        best = evaluations[0]
        if verbose:
            _log.info(
                "%-42s -> %s %s v=%.0f mae=%.2fcm crash=%s",
                situation.describe(),
                best.knobs.isp,
                best.knobs.roi,
                best.knobs.speed_kmph,
                best.mae * 100,
                best.crashed,
            )
        table[situation] = best.knobs
    return table
