"""Core contribution: situation-aware knob characterization and runtime
reconfiguration (Sec. III of the paper)."""

from repro.core.situation import (
    LaneColor,
    LaneForm,
    RoadLayout,
    Scene,
    Situation,
    TABLE3_SITUATIONS,
    full_situation_space,
    situation_by_index,
)
from repro.core.knobs import KnobSetting, knob_space, SPEED_CHOICES_KMPH
from repro.core.cases import CaseConfig, CASES, case_config
from repro.core.defaults import (
    default_characterization,
    natural_roi,
    natural_speed_kmph,
)
from repro.core.scheduler import (
    CLASSIFIER_NAMES,
    EveryFrameScheme,
    InvocationScheme,
    VariableScheme,
)
from repro.core.reconfiguration import (
    CycleDecision,
    MitigationConfig,
    OracleIdentifier,
    ReconfigurationManager,
    SituationIdentifier,
)
from repro.core.identifiers import (
    register_identifier,
    registered_identifiers,
    resolve_identifier,
)

# NOTE: repro.core.characterization is intentionally NOT imported here:
# it drives the full HiL engine, whose import chain passes back through
# repro.core (the situation/reconfiguration leaves).  Import it as
# ``from repro.core.characterization import characterize`` directly.

__all__ = [
    "KnobSetting",
    "knob_space",
    "SPEED_CHOICES_KMPH",
    "CaseConfig",
    "CASES",
    "case_config",
    "default_characterization",
    "natural_roi",
    "natural_speed_kmph",
    "CLASSIFIER_NAMES",
    "EveryFrameScheme",
    "InvocationScheme",
    "VariableScheme",
    "CycleDecision",
    "MitigationConfig",
    "OracleIdentifier",
    "ReconfigurationManager",
    "SituationIdentifier",
    "register_identifier",
    "registered_identifiers",
    "resolve_identifier",
    "LaneColor",
    "LaneForm",
    "RoadLayout",
    "Scene",
    "Situation",
    "TABLE3_SITUATIONS",
    "full_situation_space",
    "situation_by_index",
]
