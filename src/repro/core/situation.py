"""Situation definition (paper Sec. III-A, Table I).

A *situation* is a combination of environmental factors that influence
closed-loop performance.  The paper fixes three features with the most
impact on quality of control:

1. type of lane  — color (white / yellow) × form (dotted / continuous /
   double continuous) of the **left** lane marking; the right marking is
   always white dotted in the paper's experiments (Sec. IV-A),
2. layout of road — left turn / right turn / straight,
3. type of scene / weather — day / night / dark / dawn / dusk.

Table III of the paper evaluates the 21 most frequently encountered
combinations; :data:`TABLE3_SITUATIONS` lists them in the paper's order
(1-indexed situation ids).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from itertools import product
from typing import Iterator, Tuple

__all__ = [
    "LaneColor",
    "LaneForm",
    "RoadLayout",
    "Scene",
    "Situation",
    "TABLE3_SITUATIONS",
    "full_situation_space",
    "situation_by_index",
]


class LaneColor(str, Enum):
    """Color of the left lane marking."""

    WHITE = "white"
    YELLOW = "yellow"


class LaneForm(str, Enum):
    """Form of the left lane marking."""

    CONTINUOUS = "continuous"
    DOTTED = "dotted"
    DOUBLE = "double"  # double continuous


class RoadLayout(str, Enum):
    """Local road layout."""

    STRAIGHT = "straight"
    LEFT = "left"
    RIGHT = "right"


class Scene(str, Enum):
    """Scene / weather (illumination) condition."""

    DAY = "day"
    NIGHT = "night"  # street lights present
    DARK = "dark"  # no street lights
    DAWN = "dawn"
    DUSK = "dusk"


@dataclass(frozen=True)
class Situation:
    """One point in the situation space of Table I.

    Instances are immutable and hashable so they can key
    characterization tables and classifier label maps.
    """

    layout: RoadLayout
    lane_color: LaneColor
    lane_form: LaneForm
    scene: Scene

    def lane_label(self) -> str:
        """The lane-classifier label, e.g. ``"white dotted"``."""
        return f"{self.lane_color.value} {self.lane_form.value}"

    def describe(self) -> str:
        """Human-readable description matching Table III wording."""
        return f"{self.layout.value}, {self.lane_label()}, {self.scene.value}"

    def to_config(self) -> Tuple[str, str, str, str]:
        """A JSON-friendly tuple used for hashing/caching."""
        return (
            self.layout.value,
            self.lane_color.value,
            self.lane_form.value,
            self.scene.value,
        )

    @classmethod
    def from_config(cls, config) -> "Situation":
        """Inverse of :meth:`to_config`."""
        layout, color, form, scene = config
        return cls(RoadLayout(layout), LaneColor(color), LaneForm(form), Scene(scene))


def _sit(layout: str, color: str, form: str, scene: str) -> Situation:
    return Situation(RoadLayout(layout), LaneColor(color), LaneForm(form), Scene(scene))


#: The 21 situations of Table III in paper order (index 0 == situation 1).
TABLE3_SITUATIONS: Tuple[Situation, ...] = (
    _sit("straight", "white", "continuous", "day"),     # 1
    _sit("straight", "white", "dotted", "day"),         # 2
    _sit("straight", "yellow", "continuous", "day"),    # 3
    _sit("straight", "yellow", "double", "day"),        # 4
    _sit("straight", "white", "continuous", "night"),   # 5
    _sit("straight", "yellow", "continuous", "night"),  # 6
    _sit("straight", "white", "continuous", "dark"),    # 7
    _sit("right", "white", "continuous", "day"),        # 8
    _sit("right", "yellow", "continuous", "day"),       # 9
    _sit("right", "yellow", "double", "day"),           # 10
    _sit("right", "white", "continuous", "night"),      # 11
    _sit("right", "yellow", "continuous", "night"),     # 12
    _sit("right", "white", "dotted", "day"),            # 13
    _sit("right", "white", "dotted", "night"),          # 14
    _sit("left", "white", "continuous", "day"),         # 15
    _sit("left", "yellow", "continuous", "day"),        # 16
    _sit("left", "yellow", "double", "day"),            # 17
    _sit("left", "white", "continuous", "night"),       # 18
    _sit("left", "yellow", "continuous", "night"),      # 19
    _sit("left", "white", "dotted", "day"),             # 20
    _sit("left", "white", "dotted", "night"),           # 21
)


def situation_by_index(index: int) -> Situation:
    """Return the Table III situation with 1-based paper *index* (1..21)."""
    if not 1 <= index <= len(TABLE3_SITUATIONS):
        raise ValueError(
            f"situation index must be in [1, {len(TABLE3_SITUATIONS)}], got {index}"
        )
    return TABLE3_SITUATIONS[index - 1]


def full_situation_space() -> Iterator[Situation]:
    """Iterate the full cross product of Table I features (90 situations)."""
    for layout, color, form, scene in product(RoadLayout, LaneColor, LaneForm, Scene):
        yield Situation(layout, color, form, scene)
