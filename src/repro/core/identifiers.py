"""Identifier registry: resolve string specs to situation identifiers.

The HiL engine accepts ``identifier="oracle:0.99"`` (or ``"cnn"``) the
same way it accepts ``case="case3"`` — a short registry spec instead of
a constructed object.  A spec is ``"name"`` or ``"name:arg"``:

- ``"oracle"`` — ground-truth :class:`~repro.core.reconfiguration
  .OracleIdentifier`; the optional argument is its per-call accuracy
  (``"oracle:0.99"``).
- ``"cnn"`` — the trained CNN classifiers via
  :meth:`~repro.classifiers.runtime.CnnIdentifier.from_trained`
  (training is cached); ``"cnn:nofuse"`` keeps the unfused training
  graphs.

Third-party identifiers can join the registry with
:func:`register_identifier`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.core.reconfiguration import OracleIdentifier, SituationIdentifier

__all__ = [
    "IdentifierFactory",
    "register_identifier",
    "registered_identifiers",
    "resolve_identifier",
]

#: A factory takes the spec argument (the part after ``":"``, or ``None``)
#: and the run seed, and returns a ready identifier.
IdentifierFactory = Callable[[Optional[str], int], SituationIdentifier]


def _make_oracle(arg: Optional[str], seed: int) -> SituationIdentifier:
    if arg is None:
        return OracleIdentifier(seed=seed)
    try:
        accuracy = float(arg)
    except ValueError:
        raise ValueError(
            f"oracle identifier argument must be an accuracy in (0, 1], got {arg!r}"
        ) from None
    return OracleIdentifier(accuracy=accuracy, seed=seed)


def _make_cnn(arg: Optional[str], seed: int) -> SituationIdentifier:
    # Imported lazily: repro.classifiers itself imports repro.core.
    from repro.classifiers.runtime import CnnIdentifier

    if arg is None:
        return CnnIdentifier.from_trained()
    if arg == "nofuse":
        return CnnIdentifier.from_trained(fuse=False)
    raise ValueError(f"unknown cnn identifier argument {arg!r} (try 'nofuse')")


_REGISTRY: Dict[str, IdentifierFactory] = {
    "oracle": _make_oracle,
    "cnn": _make_cnn,
}


def register_identifier(name: str, factory: IdentifierFactory) -> None:
    """Add (or replace) an identifier factory under *name*.

    The factory is called as ``factory(arg, seed)`` where ``arg`` is the
    text after the ``":"`` in the spec (``None`` when absent).
    """
    if not name or ":" in name:
        raise ValueError(f"invalid identifier name {name!r}")
    _REGISTRY[name] = factory


def registered_identifiers() -> tuple:
    """Names currently resolvable by :func:`resolve_identifier` (sorted)."""
    return tuple(sorted(_REGISTRY))


def resolve_identifier(
    spec: Union[SituationIdentifier, str, None],
    seed: int = 0,
) -> SituationIdentifier:
    """Resolve *spec* to a :class:`SituationIdentifier`.

    Instances pass through unchanged; ``None`` resolves to the perfect
    oracle; strings are registry specs (``"name"`` or ``"name:arg"``).
    """
    if spec is None:
        return OracleIdentifier(seed=seed)
    if isinstance(spec, SituationIdentifier):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            "identifier must be a SituationIdentifier, a registry spec "
            f"string, or None — got {type(spec).__name__}"
        )
    name, _, arg = spec.partition(":")
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(registered_identifiers())
        raise ValueError(f"unknown identifier {name!r} (known: {known})")
    return factory(arg if arg else None, seed)
