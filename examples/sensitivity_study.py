"""Monte-Carlo knob-sensitivity study (paper Sec. III-B, first step).

Reproduces the analysis that decided *which* parameters become runtime
knobs: random knob assignments are simulated in closed loop and the QoC
variance is decomposed per knob dimension.

Run:  python examples/sensitivity_study.py        (right turn, sit. 8)
      python examples/sensitivity_study.py 7 40   (situation, samples)
"""

from __future__ import annotations

import sys

from repro.core.sensitivity import SensitivityConfig, knob_sensitivity
from repro.core.situation import situation_by_index


def main() -> None:
    index = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    samples = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    situation = situation_by_index(index)
    print(f"Monte-Carlo sensitivity on '{situation.describe()}' "
          f"({samples} samples)...\n")

    report = knob_sensitivity(situation, SensitivityConfig(n_samples=samples))

    print("share of QoC variance explained per knob dimension:")
    for knob in report.ranked_knobs():
        bar = "#" * int(report.main_effect[knob] * 40)
        print(f"  {knob:6s} {report.main_effect[knob] * 100:5.1f} %  {bar}")

    crashes = sum(1 for s in report.samples if s.crashed)
    print(f"\n{crashes}/{len(report.samples)} random assignments crashed.")
    best = min(report.samples, key=lambda s: s.effective_mae)
    print(
        f"best sampled assignment: {best.knobs.isp}, {best.knobs.roi}, "
        f"{best.knobs.speed_kmph:.0f} kmph (MAE {best.mae * 100:.2f} cm)"
    )
    print("\nknobs whose dimension dominates the variance are the ones")
    print("worth reconfiguring at runtime — the paper's Table II set.")


if __name__ == "__main__":
    main()
