"""Fault injection and graceful degradation, side by side.

Drives the robust design (case 3) toward a right turn while the
classifier accelerator drops out mid-run, once without mitigation and
once with the staleness watchdog + bounded retries enabled — the
qualitative picture behind ``benchmarks/bench_fault_tolerance.py``.

The default campaign mirrors the benchmark's flagship scenario: the
outage window is finite and the turn sits behind a long straight
lead-in, so the mitigated vehicle's conservative hold buys enough time
for identification to recover before the curve — the unmitigated one
carries a stale straight-road belief into it at full speed.

Run:  python examples/fault_injection.py
      python examples/fault_injection.py stress      (pick a preset)
"""

from __future__ import annotations

import sys

import repro
from repro.core.situation import situation_by_index
from repro.faults import FAULT_PLAN_PRESETS, resolve_fault_plan
from repro.sim.world import static_situation_track


def run(faults, mitigate: bool):
    # A right turn behind a 120 m straight lead-in: a stale
    # straight-road belief hurts exactly when the curve starts.
    track = static_situation_track(
        situation_by_index(8), length=150.0, lead_in=120.0
    )
    return repro.inject(
        faults=faults,
        track=track,
        situation=8,
        case="case3",
        seed=3,
        mitigate=mitigate,
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "outage@1500:12300"
    plan = resolve_fault_plan(name)
    print(f"fault campaign {name!r} (presets: {sorted(FAULT_PLAN_PRESETS)}):")
    print(plan.describe())

    for mitigate in (False, True):
        result = run(plan, mitigate)
        label = "mitigated" if mitigate else "unmitigated"
        status = "CRASHED" if result.crashed else "completed"
        print(
            f"\n{label}: {status}, "
            f"MAE {result.mae(skip_time_s=2.0) * 100:.2f} cm, "
            f"degraded cycles {result.degraded_cycles()}"
            f"/{len(result.cycles)}"
        )
        print(f"  fault kinds seen: {', '.join(result.fault_kinds()) or '-'}")


if __name__ == "__main__":
    main()
