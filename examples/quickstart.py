"""Quickstart: one closed-loop lane-keeping run, start to finish.

Simulates the robust design (case 3: road + lane classifiers) on a
straight daytime road, prints the quality-of-control summary, and then
repeats the run on a right turn to show the situation-aware ROI and
speed knobs kicking in.  Everything goes through the stable
``repro.simulate`` facade.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.core.situation import situation_by_index


def run_one(situation_index: int, case: str) -> None:
    situation = situation_by_index(situation_index)
    result = repro.simulate(situation=situation_index, case=case, seed=1)

    status = "CRASHED" if result.crashed else "completed"
    print(f"\n{case} on '{situation.describe()}': {status}")
    print(f"  duration          : {result.duration_s():.1f} s simulated")
    print(f"  MAE (Eq. 1)       : {result.mae(skip_time_s=2.0) * 100:.2f} cm")
    print(f"  max lane offset   : {result.max_offset():.2f} m")
    last = result.cycles[-1]
    print(
        f"  final knobs       : ISP {last.active_isp}, {last.roi}, "
        f"v = {last.speed_kmph:.0f} kmph, h = {last.period_ms:.0f} ms, "
        f"tau = {last.delay_ms:.1f} ms"
    )


def main() -> None:
    print("repro quickstart — closed-loop LKAS (DATE 2021 reproduction)")
    # Straight road, daytime: everything is easy.
    run_one(1, "case3")
    # Right turn: the road classifier switches ROI and drops the speed.
    run_one(8, "case3")
    # Dark: the scene classifier (case 4) switches the ISP knob to S2.
    run_one(7, "case4")


if __name__ == "__main__":
    main()
