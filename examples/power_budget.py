"""Hardware-awareness: the LKAS design flow under Xavier power budgets.

The paper profiles everything at the Xavier 30 W preset.  This example
re-derives the (tau, h, FPS) design points under the other nvpmodel
presets and runs the robust design closed-loop at 30 W and 10 W.

Run:  python examples/power_budget.py
"""

from __future__ import annotations

from repro.core.situation import situation_by_index
from repro.hil import HilConfig, HilEngine
from repro.platform import POWER_MODES, pipeline_timing
from repro.sim import static_situation_track


def main() -> None:
    print("case 3 design point (S0 + road + lane) per power mode:\n")
    print(f"  {'mode':6s} {'budget':>8s} {'tau ms':>8s} {'h ms':>6s} {'FPS':>6s}")
    for name, mode in POWER_MODES.items():
        timing = pipeline_timing("S0", ("road", "lane"), power_mode=name)
        budget = "inf" if mode.budget_w == float("inf") else f"{mode.budget_w:.0f} W"
        print(
            f"  {name:6s} {budget:>8s} {timing.delay_ms:8.1f} "
            f"{timing.period_ms:6.0f} {timing.fps:6.1f}"
        )

    print("\nclosed loop (case 3, night straight) at two budgets:")
    situation = situation_by_index(5)
    track = static_situation_track(situation, length=140.0)
    for mode in ("30W", "10W"):
        result = HilEngine(
            track, "case3", config=HilConfig(seed=1, power_mode=mode)
        ).run()
        status = "CRASHED" if result.crashed else "completed"
        print(
            f"  {mode}: {status}, MAE {result.mae(skip_time_s=2.0) * 100:.2f} cm "
            f"(h = {result.cycles[-1].period_ms:.0f} ms)"
        )
    print("\nslower clocks stretch the sensing chain, pushing the (tau, h)")
    print("design point out — the 'hardware-aware' half of the paper's title.")


if __name__ == "__main__":
    main()
