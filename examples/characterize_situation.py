"""Design-time characterization of one situation (paper Sec. III-B).

Sweeps the configurable knobs (ISP configuration x ROI x speed) for a
chosen situation in closed-loop simulation and prints the ranked
results — the process that fills one row of Table III.

Run:  python examples/characterize_situation.py           (situation 8)
      python examples/characterize_situation.py 20        (pick another)
"""

from __future__ import annotations

import sys

import repro
from repro.core.characterization import CharacterizationConfig, prescreen_isp
from repro.core.situation import situation_by_index


def main() -> None:
    index = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    situation = situation_by_index(index)
    config = CharacterizationConfig()
    print(f"characterizing situation {index}: {situation.describe()}\n")

    print("ISP prescreen (frame-level bad-frame rate):")
    for isp, bad in prescreen_isp(situation, config):
        flag = "  <- detectable" if bad <= config.prescreen_bad_limit else ""
        print(f"  {isp}: {bad * 100:5.1f} %{flag}")

    print("\nclosed-loop sweep (best first):")
    evaluations = repro.characterize(situation=index, config=config)
    for ev in evaluations:
        status = "CRASH" if ev.crashed else f"MAE {ev.mae * 100:6.2f} cm"
        print(
            f"  {ev.knobs.isp}  {ev.knobs.roi}  v={ev.knobs.speed_kmph:2.0f} kmph "
            f"-> {status}   (h={ev.period_ms:.0f} ms, tau={ev.delay_ms:.1f} ms)"
        )

    best = evaluations[0]
    print(
        f"\nTable III row: {situation.describe()} -> {best.knobs.isp}, "
        f"{best.knobs.roi}, [{best.knobs.speed_kmph:.0f}, "
        f"{best.period_ms:.0f}, {best.delay_ms:.1f}]"
    )


if __name__ == "__main__":
    main()
