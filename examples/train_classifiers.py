"""Train the three situation classifiers (paper Sec. III-C, Table IV).

Generates the synthetic datasets with the paper's split sizes, trains
the tiny-ResNet classifiers, reports validation accuracy, and then runs
one live identification on a rendered frame.

First run takes ~10 minutes on a laptop core; the trained weights are
cached under ~/.cache/repro and reused afterwards.

Run:  python examples/train_classifiers.py
"""

from __future__ import annotations

from repro.classifiers import CnnIdentifier, train_all_classifiers
from repro.core.situation import situation_by_index
from repro.isp import IspPipeline
from repro.sim import CameraModel, RoadSceneRenderer, static_situation_track


def main() -> None:
    print("training / loading classifiers (Table IV datasets)...")
    trained = train_all_classifiers(verbose=True)
    print()
    for name, result in trained.items():
        source = "cache" if result.from_cache else "fresh training"
        print(
            f"  {name:6s}: val accuracy {result.val_accuracy * 100:6.2f} % "
            f"({result.n_train} train / {result.n_val} val, {source})"
        )

    # Live identification on a rendered frame.
    situation = situation_by_index(13)  # right turn, white dotted, day
    camera = CameraModel(width=384, height=192)
    track = static_situation_track(situation)
    renderer = RoadSceneRenderer(camera, track, seed=4)
    raw = renderer.render_raw(track.pose_at(40.0, 0.1), situation.scene)
    frame = IspPipeline("S0").process(raw)

    identifier = CnnIdentifier({k: v.classifier for k, v in trained.items()})
    features = identifier.identify(frame, ("road", "lane", "scene"), situation)
    print(f"\ntrue situation : {situation.describe()}")
    print(
        "identified     : "
        f"{features['road'].value}, "
        f"{features['lane'][0].value} {features['lane'][1].value}, "
        f"{features['scene'].value}"
    )


if __name__ == "__main__":
    main()
