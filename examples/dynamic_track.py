"""The Fig. 7/8 scenario: dynamic switching across nine road sectors.

Drives two designs over the paper's case-study track — the fast but
situation-blind case 1 and the fully adaptive case 4 — and prints the
per-sector story: where the static design loses the lane, and how the
adaptive design's knobs follow the situations.

Run:  python examples/dynamic_track.py            (two cases, ~3 min)
      python examples/dynamic_track.py all        (all five cases)
"""

from __future__ import annotations

import sys

from repro.experiments.fig7 import format_fig7, run_fig7
from repro.hil import HilConfig, HilEngine
from repro.sim import fig7_track


def drive(case: str, track) -> None:
    print(f"\n=== {case} ===")
    result = HilEngine(track, case, config=HilConfig(seed=1)).run()
    sectors = result.sector_qoc(track, skip_distance_m=15.0)
    for sector in sectors:
        situation = track.segments[sector.sector - 1].situation
        if sector.failed:
            status = "CRASH"
        elif not sector.reached:
            status = "not reached"
        elif sector.mae is None:
            status = "-"
        else:
            status = f"MAE {sector.mae * 100:5.1f} cm"
        print(f"  sector {sector.sector} ({situation.describe():38s}): {status}")
    if result.crashed:
        print(f"  -> lane departure at s = {result.crash_s:.0f} m")
    else:
        print(f"  -> track completed, overall MAE {result.mae(2.0) * 100:.1f} cm")
    # Show the knob trajectory: distinct (ISP, ROI, v) tuples in order.
    knobs = []
    for cycle in result.cycles:
        tup = (cycle.active_isp, cycle.roi, cycle.speed_kmph)
        if not knobs or knobs[-1] != tup:
            knobs.append(tup)
    pretty = " -> ".join(f"{i}/{r.split()[-1]}/{int(v)}" for i, r, v in knobs[:12])
    print(f"  knob trajectory (ISP/ROI/v): {pretty}")


def main() -> None:
    track = fig7_track()
    print(format_fig7(run_fig7(track)))
    cases = ("case1", "case4")
    if len(sys.argv) > 1 and sys.argv[1] == "all":
        cases = ("case1", "case2", "case3", "case4", "variable")
    for case in cases:
        drive(case, track)


if __name__ == "__main__":
    main()
