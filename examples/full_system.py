"""The full system, end to end: trained CNN classifiers in the loop.

Everywhere else the examples use a ground-truth oracle for situation
identification (fast, and isolates perception/control effects).  This
example closes the last gap to the paper's system: the actual trained
road/lane/scene networks classify every ISP output frame inside the
closed loop while the vehicle drives the nine-sector track.

Run:  python examples/full_system.py          (case 4, whole track)
      python examples/full_system.py variable
"""

from __future__ import annotations

import sys
import time

from repro.classifiers import CnnIdentifier, train_all_classifiers
from repro.hil import HilConfig, HilEngine
from repro.sim import fig7_track


def main() -> None:
    case = sys.argv[1] if len(sys.argv) > 1 else "case4"
    print("loading classifiers (trains on first use, then cached)...")
    trained = train_all_classifiers()
    identifier = CnnIdentifier({k: v.classifier for k, v in trained.items()})
    for name, result in trained.items():
        print(f"  {name:6s}: val accuracy {result.val_accuracy * 100:.2f} %")

    track = fig7_track()
    engine = HilEngine(track, case, identifier=identifier, config=HilConfig(seed=1))
    print(f"\ndriving the Fig. 7 track with {case} + CNN identification...")
    started = time.time()
    result = engine.run()
    wall = time.time() - started

    status = "CRASHED" if result.crashed else "completed"
    print(f"\n{status} in {result.duration_s():.0f} s simulated "
          f"({wall:.0f} s wall)")
    print(f"MAE: {result.mae(skip_time_s=2.0) * 100:.2f} cm")

    # How often did the CNN identification disagree with the truth?
    wrong = 0
    for cycle in result.cycles:
        true_situation = track.situation_at(cycle.s)
        believed_roi_family = cycle.roi
        # The ROI knob encodes the believed layout family; compare.
        from repro.core.defaults import natural_roi

        if engine.case.adapt_roi_fine:
            expected = natural_roi(true_situation)
            if believed_roi_family != expected:
                wrong += 1
    print(
        f"cycles whose selected ROI mismatched the true situation: "
        f"{wrong}/{len(result.cycles)} "
        "(transitions cost one cycle each; the rest is classifier error)"
    )


if __name__ == "__main__":
    main()
