"""The full system, end to end: trained CNN classifiers in the loop.

Everywhere else the examples use a ground-truth oracle for situation
identification (fast, and isolates perception/control effects).  This
example closes the last gap to the paper's system: the actual trained
road/lane/scene networks classify every ISP output frame inside the
closed loop while the vehicle drives the nine-sector track.  The
``identifier="cnn"`` registry spec trains (or loads) the networks and
wires them in.

Run:  python examples/full_system.py          (case 4, whole track)
      python examples/full_system.py variable
"""

from __future__ import annotations

import sys
import time

import repro
from repro.core.cases import case_config
from repro.core.defaults import natural_roi
from repro.sim import fig7_track


def main() -> None:
    case = sys.argv[1] if len(sys.argv) > 1 else "case4"
    track = fig7_track()
    print(f"driving the Fig. 7 track with {case} + CNN identification")
    print("(classifiers train on first use, then cached)...")
    started = time.time()
    result = repro.simulate(track=track, case=case, identifier="cnn", seed=1)
    wall = time.time() - started

    status = "CRASHED" if result.crashed else "completed"
    print(f"\n{status} in {result.duration_s():.0f} s simulated "
          f"({wall:.0f} s wall)")
    print(f"MAE: {result.mae(skip_time_s=2.0) * 100:.2f} cm")

    # How often did the CNN identification disagree with the truth?
    # The ROI knob encodes the believed layout family; compare it with
    # the ROI the true situation would select.
    wrong = 0
    if case_config(case).adapt_roi_fine:
        for cycle in result.cycles:
            true_situation = track.situation_at(cycle.s)
            if cycle.roi != natural_roi(true_situation):
                wrong += 1
    print(
        f"cycles whose selected ROI mismatched the true situation: "
        f"{wrong}/{len(result.cycles)} "
        "(transitions cost one cycle each; the rest is classifier error)"
    )


if __name__ == "__main__":
    main()
