"""Control design walkthrough: delay-aware LQR and switching stability.

Designs the situation-specific LQR gains for the paper's (v, h, tau)
tuples, shows how delay and sampling shape the achievable closed loop,
and certifies switching stability across the whole gain set with a
common quadratic Lyapunov function (paper Sec. III-D, refs [15], [16]).

Run:  python examples/design_controller.py
"""

from __future__ import annotations

import numpy as np

from repro.control import GainScheduler, find_cqlf, verify_cqlf
from repro.sim import VehicleParams


def main() -> None:
    params = VehicleParams()
    scheduler = GainScheduler(params)

    print("designing LQR gains for the paper's control-knob tuples:\n")
    design_points = [
        ("case 1 static", 50.0, 25.0, 24.6),
        ("case 2 static", 50.0, 35.0, 30.1),
        ("case 3 static", 50.0, 40.0, 35.6),
        ("Table III #1 ", 50.0, 25.0, 23.1),
        ("Table III #8 ", 30.0, 25.0, 22.5),
        ("Table III #20", 30.0, 45.0, 40.7),
    ]
    for label, v_kmph, h_ms, tau_ms in design_points:
        gains = scheduler.gains_for(v_kmph / 3.6, h_ms / 1000.0, tau_ms / 1000.0)
        print(
            f"  {label}: v={v_kmph:2.0f} kmph h={h_ms:2.0f} ms tau={tau_ms:4.1f} ms "
            f"-> spectral radius {gains.closed_loop_radius:.4f}, "
            f"K = {np.round(gains.k.ravel(), 3)}"
        )

    print("\nswitching stability across all designs (CQLF search):")
    modes = [g.a_closed for g in scheduler.cached_designs()]
    p = find_cqlf(modes)
    if p is None:
        print("  no CQLF found (search failed)")
        return
    assert verify_cqlf(p, modes)
    eigvals = np.linalg.eigvalsh(p)
    print(f"  CQLF found and verified: P > 0 with eig(P) in "
          f"[{eigvals[0]:.2e}, {eigvals[-1]:.2e}]")
    print("  -> runtime switching between the situation-specific")
    print("     controllers cannot destabilize the loop (Sec. III-D).")


if __name__ == "__main__":
    main()
