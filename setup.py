"""Setuptools shim.

The offline evaluation environment has no `wheel` package, so PEP-517
editable installs (`pip install -e .`) cannot build a wheel.  This shim
enables the legacy `setup.py develop` path:

    pip install -e . --no-use-pep517 --no-build-isolation

All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
